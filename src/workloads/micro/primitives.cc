#include "workloads/micro/primitives.hh"

#include "common/log.hh"
#include "system/system.hh"

namespace syncron::workloads {

using core::Core;

namespace {

sim::Process
lockLoop(NdpSystem &sys, Core &c, sync::SyncVar lock, unsigned interval,
         unsigned ops)
{
    sync::SyncApi &api = sys.api();
    for (unsigned i = 0; i < ops; ++i) {
        co_await c.compute(interval);
        co_await api.lockAcquire(c, lock);
        // Empty critical section (Fig. 10).
        co_await api.lockRelease(c, lock);
    }
}

sim::Process
barrierLoop(NdpSystem &sys, Core &c, sync::SyncVar bar, unsigned interval,
            unsigned ops, unsigned total)
{
    sync::SyncApi &api = sys.api();
    for (unsigned i = 0; i < ops; ++i) {
        co_await c.compute(interval);
        co_await api.barrierWaitAcrossUnits(c, bar, total);
    }
}

sim::Process
semWaitLoop(NdpSystem &sys, Core &c, sync::SyncVar sem, unsigned interval,
            unsigned ops)
{
    sync::SyncApi &api = sys.api();
    for (unsigned i = 0; i < ops; ++i) {
        co_await c.compute(interval);
        co_await api.semWait(c, sem, 0);
    }
}

sim::Process
semPostLoop(NdpSystem &sys, Core &c, sync::SyncVar sem, unsigned interval,
            unsigned ops)
{
    sync::SyncApi &api = sys.api();
    for (unsigned i = 0; i < ops; ++i) {
        co_await c.compute(interval);
        co_await api.semPost(c, sem);
    }
}

sim::Process
condWaitLoop(NdpSystem &sys, Core &c, sync::SyncVar cond,
             sync::SyncVar lock, unsigned interval, unsigned ops,
             std::int64_t &tokens)
{
    sync::SyncApi &api = sys.api();
    for (unsigned i = 0; i < ops; ++i) {
        co_await c.compute(interval);
        co_await api.lockAcquire(c, lock);
        while (tokens == 0)
            co_await api.condWait(c, cond, lock);
        --tokens;
        co_await api.lockRelease(c, lock);
    }
}

sim::Process
condSignalLoop(NdpSystem &sys, Core &c, sync::SyncVar cond,
               sync::SyncVar lock, unsigned interval, unsigned ops,
               std::int64_t &tokens)
{
    sync::SyncApi &api = sys.api();
    for (unsigned i = 0; i < ops; ++i) {
        co_await c.compute(interval);
        co_await api.lockAcquire(c, lock);
        ++tokens;
        co_await api.condSignal(c, cond);
        co_await api.lockRelease(c, lock);
    }
}

} // namespace

const char *
primitiveName(Primitive p)
{
    switch (p) {
      case Primitive::Lock: return "lock";
      case Primitive::Barrier: return "barrier";
      case Primitive::Semaphore: return "semaphore";
      case Primitive::CondVar: return "condvar";
    }
    return "?";
}

PrimitiveWorkload::PrimitiveWorkload(NdpSystem &sys, Primitive primitive,
                                     unsigned interval,
                                     unsigned opsPerCore)
{
    const unsigned n = sys.numClientCores();
    sync::SyncVar var = sys.api().createSyncVar(0);
    sync::SyncVar lock = sys.api().createSyncVar(0);

    switch (primitive) {
      case Primitive::Lock:
        for (unsigned i = 0; i < n; ++i) {
            sys.spawn(lockLoop(sys, sys.clientCore(i), var, interval,
                               opsPerCore));
        }
        break;
      case Primitive::Barrier:
        for (unsigned i = 0; i < n; ++i) {
            sys.spawn(barrierLoop(sys, sys.clientCore(i), var, interval,
                                  opsPerCore, n));
        }
        break;
      case Primitive::Semaphore:
        // Waiters and posters interleave across cores (and therefore
        // across NDP units), as in a real producer/consumer split.
        for (unsigned i = 0; i < n; ++i) {
            if (i % 2 == 0) {
                sys.spawn(semWaitLoop(sys, sys.clientCore(i), var,
                                      interval, opsPerCore));
            } else {
                sys.spawn(semPostLoop(sys, sys.clientCore(i), var,
                                      interval, opsPerCore));
            }
        }
        break;
      case Primitive::CondVar:
        for (unsigned i = 0; i < n; ++i) {
            if (i % 2 == 0) {
                sys.spawn(condWaitLoop(sys, sys.clientCore(i), var, lock,
                                       interval, opsPerCore,
                                       condTokens_));
            } else {
                sys.spawn(condSignalLoop(sys, sys.clientCore(i), var,
                                         lock, interval, opsPerCore,
                                         condTokens_));
            }
        }
        break;
    }
}

MicroResult
runPrimitiveBench(Scheme scheme, Primitive primitive, unsigned interval,
                  unsigned opsPerCore, unsigned numUnits,
                  unsigned clientsPerUnit)
{
    SystemConfig cfg = SystemConfig::make(scheme, numUnits,
                                          clientsPerUnit);
    NdpSystem sys(cfg);
    PrimitiveWorkload workload(sys, primitive, interval, opsPerCore);
    sys.run();

    MicroResult result;
    result.time = sys.elapsed();
    result.syncOps = sys.stats().syncOps;
    return result;
}

} // namespace syncron::workloads
