#include "workloads/micro/primitives.hh"

#include "common/log.hh"
#include "system/system.hh"

namespace syncron::workloads {

using core::Core;

namespace {

sim::Process
lockLoop(NdpSystem &sys, Core &c, sync::Lock lock, unsigned interval,
         unsigned ops)
{
    sync::SyncApi &api = sys.api();
    for (unsigned i = 0; i < ops; ++i) {
        co_await c.compute(interval);
        co_await api.acquire(c, lock);
        // Empty critical section (Fig. 10).
        co_await api.release(c, lock);
    }
}

sim::Process
barrierLoop(NdpSystem &sys, Core &c, sync::Barrier bar, unsigned interval,
            unsigned ops)
{
    sync::SyncApi &api = sys.api();
    for (unsigned i = 0; i < ops; ++i) {
        co_await c.compute(interval);
        co_await api.wait(c, bar);
    }
}

sim::Process
semWaitLoop(NdpSystem &sys, Core &c, sync::Semaphore sem,
            unsigned interval, unsigned ops)
{
    sync::SyncApi &api = sys.api();
    for (unsigned i = 0; i < ops; ++i) {
        co_await c.compute(interval);
        co_await api.wait(c, sem);
    }
}

sim::Process
semPostLoop(NdpSystem &sys, Core &c, sync::Semaphore sem,
            unsigned interval, unsigned ops)
{
    sync::SyncApi &api = sys.api();
    for (unsigned i = 0; i < ops; ++i) {
        co_await c.compute(interval);
        co_await api.post(c, sem);
    }
}

sim::Process
condWaitLoop(NdpSystem &sys, Core &c, sync::CondVar cond,
             sync::Lock lock, unsigned interval, unsigned ops,
             std::int64_t &tokens)
{
    sync::SyncApi &api = sys.api();
    for (unsigned i = 0; i < ops; ++i) {
        co_await c.compute(interval);
        co_await api.acquire(c, lock);
        while (tokens == 0)
            co_await api.wait(c, cond, lock);
        --tokens;
        co_await api.release(c, lock);
    }
}

sim::Process
condSignalLoop(NdpSystem &sys, Core &c, sync::CondVar cond,
               sync::Lock lock, unsigned interval, unsigned ops,
               std::int64_t &tokens)
{
    sync::SyncApi &api = sys.api();
    for (unsigned i = 0; i < ops; ++i) {
        co_await c.compute(interval);
        co_await api.acquire(c, lock);
        ++tokens;
        co_await api.signal(c, cond);
        co_await api.release(c, lock);
    }
}

sim::Process
semFanoutLoop(NdpSystem &sys, Core &c,
              const std::vector<sync::Semaphore> &sems, unsigned rounds)
{
    sync::SyncApi &api = sys.api();
    sync::SyncBatch batch(api, c);
    for (unsigned r = 0; r < rounds; ++r) {
        co_await c.compute(50);

        // Fan the posts out in one batch and overlap them with compute;
        // posts are req_async, so their futures resolve at issue.
        for (const sync::Semaphore &sem : sems)
            batch.post(sem);
        std::vector<sync::SyncFuture> posts = batch.submit();
        co_await c.compute(20);
        for (sync::SyncFuture &f : posts)
            co_await f;

        // Then collect the whole set back in a second batch.
        for (const sync::Semaphore &sem : sems)
            batch.wait(sem);
        std::vector<sync::SyncFuture> waits = batch.submit();
        for (sync::SyncFuture &f : waits)
            co_await f;
    }
}

} // namespace

SemFanoutWorkload::SemFanoutWorkload(NdpSystem &sys, unsigned width,
                                     unsigned rounds, bool contended)
{
    SYNCRON_ASSERT(width >= 1, "semaphore fan-out of zero width");
    const unsigned n = sys.numClientCores();
    sync::SyncApi &api = sys.api();

    if (contended) {
        // One shared set homed in unit 0; every post/wait contends.
        std::vector<sync::Semaphore> shared;
        shared.reserve(width);
        for (unsigned w = 0; w < width; ++w)
            shared.push_back(api.createSemaphore(0, 0));
        sets_.push_back(std::move(shared));
        for (unsigned i = 0; i < n; ++i) {
            sys.spawn(semFanoutLoop(sys, sys.clientCore(i), sets_[0],
                                    rounds),
                      sys.clientCore(i));
        }
        return;
    }

    // Private per-core sets homed with their core: the uncontended
    // regime, where each core consumes exactly the resources it posts.
    sets_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        Core &c = sys.clientCore(i);
        std::vector<sync::Semaphore> own;
        own.reserve(width);
        for (unsigned w = 0; w < width; ++w)
            own.push_back(api.createSemaphore(c.unit(), 0));
        sets_.push_back(std::move(own));
    }
    for (unsigned i = 0; i < n; ++i)
        sys.spawn(semFanoutLoop(sys, sys.clientCore(i), sets_[i], rounds),
                  sys.clientCore(i));
}

const char *
primitiveName(Primitive p)
{
    switch (p) {
      case Primitive::Lock: return "lock";
      case Primitive::Barrier: return "barrier";
      case Primitive::Semaphore: return "semaphore";
      case Primitive::CondVar: return "condvar";
    }
    return "?";
}

PrimitiveWorkload::PrimitiveWorkload(NdpSystem &sys, Primitive primitive,
                                     unsigned interval,
                                     unsigned opsPerCore)
{
    const unsigned n = sys.numClientCores();

    switch (primitive) {
      case Primitive::Lock: {
        const sync::Lock lock = sys.api().createLock(0);
        for (unsigned i = 0; i < n; ++i) {
            sys.spawn(lockLoop(sys, sys.clientCore(i), lock, interval,
                               opsPerCore),
                      sys.clientCore(i));
        }
        break;
      }
      case Primitive::Barrier: {
        const sync::Barrier bar = sys.api().createBarrier(0, n);
        for (unsigned i = 0; i < n; ++i) {
            sys.spawn(barrierLoop(sys, sys.clientCore(i), bar, interval,
                                  opsPerCore),
                      sys.clientCore(i));
        }
        break;
      }
      case Primitive::Semaphore: {
        // Waiters and posters interleave across cores (and therefore
        // across NDP units), as in a real producer/consumer split.
        const sync::Semaphore sem = sys.api().createSemaphore(0, 0);
        for (unsigned i = 0; i < n; ++i) {
            if (i % 2 == 0) {
                sys.spawn(semWaitLoop(sys, sys.clientCore(i), sem,
                                      interval, opsPerCore),
                          sys.clientCore(i));
            } else {
                sys.spawn(semPostLoop(sys, sys.clientCore(i), sem,
                                      interval, opsPerCore),
                          sys.clientCore(i));
            }
        }
        break;
      }
      case Primitive::CondVar: {
        const sync::CondVar cond = sys.api().createCondVar(0);
        const sync::Lock lock = sys.api().createLock(0);
        for (unsigned i = 0; i < n; ++i) {
            if (i % 2 == 0) {
                sys.spawn(condWaitLoop(sys, sys.clientCore(i), cond,
                                       lock, interval, opsPerCore,
                                       condTokens_),
                          sys.clientCore(i));
            } else {
                sys.spawn(condSignalLoop(sys, sys.clientCore(i), cond,
                                         lock, interval, opsPerCore,
                                         condTokens_),
                          sys.clientCore(i));
            }
        }
        break;
      }
    }
}

MicroResult
runPrimitiveBench(Scheme scheme, Primitive primitive, unsigned interval,
                  unsigned opsPerCore, unsigned numUnits,
                  unsigned clientsPerUnit)
{
    SystemConfig cfg = SystemConfig::make(scheme, numUnits,
                                          clientsPerUnit);
    NdpSystem sys(cfg);
    PrimitiveWorkload workload(sys, primitive, interval, opsPerCore);
    sys.run();

    MicroResult result;
    result.time = sys.elapsed();
    result.syncOps = sys.stats().syncOps;
    return result;
}

} // namespace syncron::workloads
