/**
 * @file
 * Replication workload family: per-partition ordered apply with
 * lock-protected watermarks — the live workload driving durability's
 * crash-injection testing (and the `replication` scenario family's
 * synthetic twin).
 *
 * The system's units are the partitions of a replicated log. Each
 * client core serves the partition of its own unit (core i -> partition
 * i % numUnits): it drains a bursty upstream of records — batches of
 * burstLen nearly back-to-back arrivals separated by long idle gaps,
 * modeled as compute intervals from the core's seeded Rng — and applies
 * each record in order:
 *
 *   wait(admission semaphore of p)     // bounded apply pipeline
 *   acquire(watermark lock of p)
 *   accessHint(watermark of p, write)  // advance the partition LSN
 *   release(watermark lock of p)
 *   post(admission semaphore of p)
 *
 * A full-machine barrier closes every epoch (a replication checkpoint
 * round). All operations are blocking, so each core's completion
 * records land in program order — the property the crash-recovery
 * sweep relies on when treating per-core durable counts as
 * program-order prefixes.
 */

#ifndef SYNCRON_WORKLOADS_REPLICATION_REPLICATION_HH
#define SYNCRON_WORKLOADS_REPLICATION_REPLICATION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sync/primitives.hh"

namespace syncron {
class NdpSystem;
} // namespace syncron

namespace syncron::workloads {

/** Shape of one replication run. */
struct ReplicationParams
{
    unsigned epochs = 4;      ///< checkpoint rounds (barriers)
    unsigned opsPerEpoch = 8; ///< records applied per core per epoch
    unsigned burstLen = 4;    ///< upstream records per arrival burst
    unsigned semResources = 4; ///< admission pipeline depth
    unsigned interval = 200;   ///< mean compute instructions between ops
    std::uint64_t seed = 1;
};

/**
 * Creates the per-partition primitives + watermark lines and spawns one
 * apply loop per client core; the object must outlive the run.
 *
 *   NdpSystem sys(cfg);
 *   ReplicationWorkload w(sys, params);
 *   sys.run();
 */
class ReplicationWorkload
{
  public:
    ReplicationWorkload(NdpSystem &sys, const ReplicationParams &params);

    ReplicationWorkload(const ReplicationWorkload &) = delete;
    ReplicationWorkload &operator=(const ReplicationWorkload &) = delete;

    /** Watermark line of partition @p p (tests inspect placement). */
    Addr watermark(unsigned p) const { return watermarks_[p]; }

  private:
    std::vector<sync::Lock> locks_;      ///< per-partition watermark lock
    std::vector<sync::Semaphore> sems_;  ///< per-partition admission
    std::vector<sync::Barrier> epochBarriers_;
    std::vector<Addr> watermarks_;       ///< per-partition LSN line
};

} // namespace syncron::workloads

#endif // SYNCRON_WORKLOADS_REPLICATION_REPLICATION_HH
