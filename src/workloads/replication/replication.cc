#include "workloads/replication/replication.hh"

#include "common/log.hh"
#include "common/rng.hh"
#include "system/system.hh"

namespace syncron::workloads {

using core::Core;

namespace {

/** Bursty upstream gap: short within a batch, long between batches. */
std::uint64_t
upstreamGap(Rng &rng, const ReplicationParams &p, unsigned op)
{
    const std::uint64_t mean = p.interval;
    const std::uint64_t jittered =
        mean / 2 + rng.below(mean == 0 ? 1 : mean) + 1;
    if (op != 0 && op % p.burstLen == 0)
        return jittered * 8; // idle gap before the next batch lands
    return jittered;
}

sim::Process
applyLoop(NdpSystem &sys, Core &c, sync::Lock lock, sync::Semaphore sem,
          const std::vector<sync::Barrier> &epochBarriers, Addr watermark,
          ReplicationParams params)
{
    sync::SyncApi &api = sys.api();
    Rng rng(params.seed * 0xd6e8feb86659fd93ULL + c.id() + 1);
    for (unsigned e = 0; e < params.epochs; ++e) {
        for (unsigned op = 0; op < params.opsPerEpoch; ++op) {
            co_await c.compute(upstreamGap(rng, params, op));
            // Admit the record into the bounded apply pipeline, then
            // advance the partition watermark under its lock.
            co_await api.wait(c, sem);
            co_await api.acquire(c, lock);
            api.accessHint(c, watermark, true);
            co_await c.compute(20);
            co_await api.release(c, lock);
            co_await api.post(c, sem);
        }
        co_await api.wait(c, epochBarriers[e]);
    }
}

} // namespace

ReplicationWorkload::ReplicationWorkload(NdpSystem &sys,
                                         const ReplicationParams &params)
{
    SYNCRON_ASSERT(params.epochs >= 1, "replication needs >= 1 epoch");
    SYNCRON_ASSERT(params.opsPerEpoch >= 1,
                   "replication needs >= 1 op per epoch");
    SYNCRON_ASSERT(params.burstLen >= 1,
                   "replication needs burstLen >= 1");
    SYNCRON_ASSERT(params.semResources >= 1,
                   "replication admission needs >= 1 resource");

    sync::SyncApi &api = sys.api();
    const unsigned n = sys.numClientCores();
    const unsigned partitions = sys.config().numUnits;

    // One watermark lock + admission semaphore per partition, homed with
    // the partition's data; the watermark line lives in the same unit.
    for (unsigned p = 0; p < partitions; ++p) {
        locks_.push_back(api.createLock(p));
        sems_.push_back(api.createSemaphore(p, params.semResources));
        watermarks_.push_back(
            sys.machine().addrSpace().allocIn(p, 16, 8));
    }
    for (unsigned e = 0; e < params.epochs; ++e)
        epochBarriers_.push_back(api.createBarrier(0, n));

    for (unsigned i = 0; i < n; ++i) {
        Core &c = sys.clientCore(i);
        const unsigned p = i % partitions;
        sys.spawn(applyLoop(sys, c, locks_[p], sems_[p], epochBarriers_,
                            watermarks_[p], params),
                  c);
    }
}

} // namespace syncron::workloads
