#include "core/core.hh"

#include <algorithm>

namespace syncron::core {

Core::Core(Machine &machine, CoreId id, UnitId unit, unsigned localId)
    : machine_(machine), l1_(machine.config().l1, machine.stats()),
      rng_(machine.config().seed * 0x9e3779b97f4a7c15ULL + id + 1),
      id_(id), unit_(unit), localId_(localId)
{}

sim::Delay
Core::compute(std::uint64_t instructions)
{
    machine_.stats().instructions += instructions;
    return sim::Delay{machine_.eq(), instructions * cyclePeriod()};
}

Tick
Core::cachedAccess(Addr addr, bool isWrite, std::uint32_t bytes)
{
    // Split accesses that straddle a line boundary (rare; keeps the tag
    // model honest for multi-word reads).
    const Tick now = machine_.eq().now();
    Tick done = now;
    Addr line = lineAlign(addr);
    const Addr lastLine = lineAlign(addr + bytes - 1);
    Tick start = now;
    for (; line <= lastLine; line += kCacheLineBytes) {
        const cache::CacheAccessResult res = l1_.access(line, isWrite);
        const Tick lookup =
            static_cast<Tick>(l1_.params().hitCycles) * cyclePeriod();
        Tick t = start + lookup;
        if (!res.hit) {
            // Fill the line from the owning unit's DRAM.
            t = machine_.memoryAccess(t, unit_, line, false,
                                      kCacheLineBytes);
            if (res.writeback) {
                // Dirty victim written back off the critical path; it
                // still occupies banks/links and counts energy.
                machine_.memoryAccess(start + lookup, unit_,
                                      res.victimAddr, true,
                                      kCacheLineBytes);
            }
        }
        done = std::max(done, t);
        start = t;
    }
    return done;
}

sim::Delay
Core::load(Addr addr, std::uint32_t bytes, MemKind kind)
{
    ++machine_.stats().memOps;
    const Tick now = machine_.eq().now();
    Tick done;
    if (kind == MemKind::SharedRW)
        done = machine_.memoryAccess(now, unit_, addr, false, bytes);
    else
        done = cachedAccess(addr, false, bytes);
    return sim::Delay{machine_.eq(), done - now};
}

sim::Delay
Core::store(Addr addr, std::uint32_t bytes, MemKind kind)
{
    ++machine_.stats().memOps;
    const Tick now = machine_.eq().now();
    Tick done;
    if (kind == MemKind::SharedRW)
        done = machine_.memoryAccess(now, unit_, addr, true, bytes);
    else
        done = cachedAccess(addr, true, bytes);
    return sim::Delay{machine_.eq(), done - now};
}

} // namespace syncron::core
