#include "core/core.hh"

#include <algorithm>

namespace syncron::core {

Core::Core(Machine &machine, CoreId id, UnitId unit, unsigned localId)
    : machine_(machine), l1_(machine.config().l1, machine.statsFor(unit)),
      rng_(machine.config().seed * 0x9e3779b97f4a7c15ULL + id + 1),
      id_(id), unit_(unit), localId_(localId)
{}

sim::Delay
Core::compute(std::uint64_t instructions)
{
    machine_.statsFor(unit_).instructions += instructions;
    return sim::Delay{machine_.eq(unit_), instructions * cyclePeriod()};
}

MemOp
Core::load(Addr addr, std::uint32_t bytes, MemKind kind)
{
    ++machine_.statsFor(unit_).memOps;
    return MemOp{*this, addr, bytes, false, kind};
}

MemOp
Core::store(Addr addr, std::uint32_t bytes, MemKind kind)
{
    ++machine_.statsFor(unit_).memOps;
    return MemOp{*this, addr, bytes, true, kind};
}

void
MemOp::await_suspend(std::coroutine_handle<> h)
{
    h_ = h;
    Machine &m = core_.machine_;
    const Tick now = m.eq(core_.unit()).now();
    if (kind_ == MemKind::SharedRW) {
        // Uncacheable: one full (possibly remote) DRAM transaction; the
        // completion callback runs at the response-arrival tick on this
        // core's shard.
        m.memoryAccessAsync(now, core_.unit(), addr_, isWrite_, bytes_,
                            [this] { h_.resume(); });
        return;
    }
    start_ = now;
    done_ = now;
    line_ = lineAlign(addr_);
    lastLine_ = lineAlign(addr_ + bytes_ - 1);
    stepLines();
}

void
MemOp::stepLines()
{
    // Split accesses that straddle a line boundary (rare; keeps the tag
    // model honest for multi-word reads).
    Machine &m = core_.machine_;
    while (line_ <= lastLine_) {
        const cache::CacheAccessResult res =
            core_.l1_.access(line_, isWrite_);
        const Tick lookup =
            static_cast<Tick>(core_.l1_.params().hitCycles)
            * core_.cyclePeriod();
        const Tick t = start_ + lookup;
        if (!res.hit) {
            // Fill the line from the owning unit's DRAM, then continue
            // the walk when the fill arrives.
            m.memoryAccessAsync(t, core_.unit(), line_, false,
                                kCacheLineBytes,
                                [this] { onFillDone(); });
            if (res.writeback) {
                // Dirty victim written back off the critical path; it
                // still occupies banks/links and counts energy.
                m.memoryAccessDetached(t, core_.unit(), res.victimAddr,
                                       true, kCacheLineBytes);
            }
            return;
        }
        done_ = std::max(done_, t);
        start_ = t;
        line_ += kCacheLineBytes;
    }
    finish();
}

void
MemOp::onFillDone()
{
    const Tick t = core_.machine_.eq(core_.unit()).now();
    done_ = std::max(done_, t);
    start_ = t;
    line_ += kCacheLineBytes;
    stepLines();
}

void
MemOp::finish()
{
    sim::EventQueue &eq = core_.machine_.eq(core_.unit());
    eq.schedule(done_, [h = h_] { h.resume(); });
}

} // namespace syncron::core
