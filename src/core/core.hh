/**
 * @file
 * Model of one in-order programmable NDP core (Table 5: 16 cores @
 * 2.5 GHz per unit, private 16 KB L1, one outstanding memory operation).
 *
 * Workloads run as coroutines and interact with the machine exclusively
 * through this class:
 *
 *   co_await core.compute(n);              // n instructions @ 1 IPC
 *   co_await core.load(addr, 8, MemKind::SharedRW);
 *   co_await core.store(addr, 8, MemKind::Private);
 *
 * The baseline architecture uses software-assisted coherence
 * (Section 2.1): thread-private and shared read-only data may be cached
 * in the L1; shared read-write data is uncacheable and always accesses
 * DRAM at the owning unit. The MemKind argument selects that policy.
 */

#ifndef SYNCRON_CORE_CORE_HH
#define SYNCRON_CORE_CORE_HH

#include <cstdint>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "sim/process.hh"
#include "system/machine.hh"

namespace syncron::core {

/** Sharing class of the data touched by a memory operation. */
enum class MemKind
{
    Private,  ///< thread-private: cacheable
    SharedRO, ///< shared read-only: cacheable
    SharedRW, ///< shared read-write: uncacheable (software coherence)
};

class Core;

/**
 * Awaitable memory operation returned by Core::load()/store().
 *
 * Accesses whose data lives in a foreign unit must not touch that
 * unit's DRAM/crossbar synchronously under sharded simulation, so the
 * access runs as a small state machine over Machine's asynchronous
 * transport: cache-hit legs advance synchronously, each miss fill
 * suspends until the (possibly cross-shard) DRAM round trip completes,
 * and the coroutine resumes at the tick the last outstanding leg
 * finishes. The object lives in the co_await expression, so its address
 * is stable for the callbacks it parks.
 */
class MemOp
{
  public:
    MemOp(Core &core, Addr addr, std::uint32_t bytes, bool isWrite,
          MemKind kind)
        : core_(core), addr_(addr), bytes_(bytes), isWrite_(isWrite),
          kind_(kind)
    {}

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}

  private:
    /** Walks lines from line_; issues at most one fill then suspends. */
    void stepLines();
    /** Continuation of stepLines() after a miss fill arrives. */
    void onFillDone();
    /** Schedules the coroutine resume at done_. */
    void finish();

    Core &core_;
    Addr addr_;
    std::uint32_t bytes_;
    bool isWrite_;
    MemKind kind_;
    std::coroutine_handle<> h_;
    Tick start_ = 0;
    Tick done_ = 0;
    Addr line_ = 0;
    Addr lastLine_ = 0;
};

/** One simulated NDP core. */
class Core
{
  public:
    /**
     * @param machine the platform this core lives on
     * @param id      system-wide core id
     * @param unit    NDP unit housing this core
     * @param localId index of this core within its unit (waitlist bit)
     */
    Core(Machine &machine, CoreId id, UnitId unit, unsigned localId);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /** Executes @p instructions compute instructions at 1 IPC. */
    sim::Delay compute(std::uint64_t instructions);

    /** Loads @p bytes from @p addr. */
    MemOp load(Addr addr, std::uint32_t bytes = 8,
               MemKind kind = MemKind::SharedRW);

    /** Stores @p bytes to @p addr (completes before the next op). */
    MemOp store(Addr addr, std::uint32_t bytes = 8,
                MemKind kind = MemKind::SharedRW);

    CoreId id() const { return id_; }
    UnitId unit() const { return unit_; }
    unsigned localId() const { return localId_; }
    Machine &machine() { return machine_; }
    Rng &rng() { return rng_; }
    cache::Cache &l1() { return l1_; }

    /** Period of the core clock in ticks (400 ps @ 2.5 GHz). */
    Tick cyclePeriod() const { return kCoreClock.period(); }

  private:
    friend class MemOp;

    Machine &machine_;
    cache::Cache l1_;
    Rng rng_;
    CoreId id_;
    UnitId unit_;
    unsigned localId_;
};

} // namespace syncron::core

#endif // SYNCRON_CORE_CORE_HH
