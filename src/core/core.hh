/**
 * @file
 * Model of one in-order programmable NDP core (Table 5: 16 cores @
 * 2.5 GHz per unit, private 16 KB L1, one outstanding memory operation).
 *
 * Workloads run as coroutines and interact with the machine exclusively
 * through this class:
 *
 *   co_await core.compute(n);              // n instructions @ 1 IPC
 *   co_await core.load(addr, 8, MemKind::SharedRW);
 *   co_await core.store(addr, 8, MemKind::Private);
 *
 * The baseline architecture uses software-assisted coherence
 * (Section 2.1): thread-private and shared read-only data may be cached
 * in the L1; shared read-write data is uncacheable and always accesses
 * DRAM at the owning unit. The MemKind argument selects that policy.
 */

#ifndef SYNCRON_CORE_CORE_HH
#define SYNCRON_CORE_CORE_HH

#include <cstdint>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "sim/process.hh"
#include "system/machine.hh"

namespace syncron::core {

/** Sharing class of the data touched by a memory operation. */
enum class MemKind
{
    Private,  ///< thread-private: cacheable
    SharedRO, ///< shared read-only: cacheable
    SharedRW, ///< shared read-write: uncacheable (software coherence)
};

/** One simulated NDP core. */
class Core
{
  public:
    /**
     * @param machine the platform this core lives on
     * @param id      system-wide core id
     * @param unit    NDP unit housing this core
     * @param localId index of this core within its unit (waitlist bit)
     */
    Core(Machine &machine, CoreId id, UnitId unit, unsigned localId);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /** Executes @p instructions compute instructions at 1 IPC. */
    sim::Delay compute(std::uint64_t instructions);

    /** Loads @p bytes from @p addr. */
    sim::Delay load(Addr addr, std::uint32_t bytes = 8,
                    MemKind kind = MemKind::SharedRW);

    /** Stores @p bytes to @p addr (completes before the next op). */
    sim::Delay store(Addr addr, std::uint32_t bytes = 8,
                     MemKind kind = MemKind::SharedRW);

    CoreId id() const { return id_; }
    UnitId unit() const { return unit_; }
    unsigned localId() const { return localId_; }
    Machine &machine() { return machine_; }
    Rng &rng() { return rng_; }
    cache::Cache &l1() { return l1_; }

    /** Period of the core clock in ticks (400 ps @ 2.5 GHz). */
    Tick cyclePeriod() const { return kCoreClock.period(); }

  private:
    /** Timed access through the L1 (cacheable kinds). */
    Tick cachedAccess(Addr addr, bool isWrite, std::uint32_t bytes);

    Machine &machine_;
    cache::Cache l1_;
    Rng rng_;
    CoreId id_;
    UnitId unit_;
    unsigned localId_;
};

} // namespace syncron::core

#endif // SYNCRON_CORE_CORE_HH
