/**
 * @file
 * Directory-based MESI coherence model — used ONLY by the motivation
 * experiments (paper Table 1 and Fig. 2), which quantify why
 * coherence-based synchronization scales poorly on NDP systems. The
 * baseline NDP architecture itself has no hardware coherence
 * (Section 2.1); this module simulates the hypothetical alternative.
 *
 * Model: every cache line has a home unit (by address) with a directory
 * entry (state + owner + sharer set) held in SRAM at the memory
 * controller. Cores have private L1s that may cache shared read-write
 * data under MESI. Reads/writes/atomic RMWs are timed through the
 * Machine's crossbars, links, and DRAM: misses consult the directory,
 * fetch from DRAM or the remote owner (cache-to-cache transfer), and
 * writes invalidate sharers. Value shadows make atomic RMW sequences
 * (test-and-set, fetch-and-add) semantically exact: updates apply in
 * directory-serialization order.
 */

#ifndef SYNCRON_COHERENCE_MESI_HH
#define SYNCRON_COHERENCE_MESI_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "sim/process.hh"
#include "system/machine.hh"

namespace syncron::coherence {

/** One coherent multi-core system layered over a Machine. */
class MesiSystem
{
  public:
    /**
     * @param machine platform (units/links/DRAM reused as NUMA fabric)
     * @param numCores total cores; core c lives in unit
     *                 c / (numCores / numUnits) (even spread)
     */
    MesiSystem(Machine &machine, unsigned numCores);

    /** Unit (NUMA socket) of @p core. */
    UnitId unitOf(unsigned core) const { return coreUnit_[core]; }

    /**
     * Timed coherent read; returns the completion tick.
     * @param start issue tick (>= now)
     */
    Tick read(unsigned core, Addr addr, Tick start);

    /** Timed coherent write (RFO + invalidations). */
    Tick write(unsigned core, Addr addr, Tick start);

    /**
     * Atomic swap on the word at @p addr.
     * @return {completion tick, previous value}
     */
    std::pair<Tick, std::uint64_t> rmwSwap(unsigned core, Addr addr,
                                           std::uint64_t newValue,
                                           Tick start);

    /** Atomic fetch-and-add. @return {completion tick, previous value} */
    std::pair<Tick, std::uint64_t> rmwFetchAdd(unsigned core, Addr addr,
                                               std::uint64_t delta,
                                               Tick start);

    /** Host-visible current value of the word at @p addr. */
    std::uint64_t value(Addr addr) const;

    /** Directly sets a word (initialization). */
    void setValue(Addr addr, std::uint64_t v);

    /** L1 hit latency in ticks (for spin-loop pacing). */
    Tick hitLatency() const;

    unsigned numCores() const
    {
        return static_cast<unsigned>(coreUnit_.size());
    }

    /** The platform's event queue (spin loops pace themselves on it). */
    sim::EventQueue &machineEq() { return machine_.eq(); }

  private:
    enum class DirState : std::uint8_t { Invalid, Shared, Modified };

    struct DirEntry
    {
        DirState state = DirState::Invalid;
        unsigned owner = 0;           ///< valid when Modified
        std::uint64_t sharers = 0;    ///< bit per core
        Tick busyUntil = 0;           ///< serializes requests per line
    };

    DirEntry &dirEntry(Addr line);
    /** True when @p core can hit locally given directory knowledge. */
    bool localHit(unsigned core, Addr line, bool needExclusive) const;
    /** Common miss path; returns completion and updates directory. */
    Tick missPath(unsigned core, Addr line, bool needExclusive,
                  Tick start);

    Machine &machine_;
    std::vector<UnitId> coreUnit_;
    std::vector<std::unique_ptr<cache::Cache>> l1_;
    std::unordered_map<Addr, DirEntry> dir_;
    std::unordered_map<Addr, std::uint64_t> values_;
};

/** A TTAS (test-and-test-and-set) spin lock over MESI. */
sim::Process ttasLockLoop(MesiSystem &sys, unsigned core, Addr lockAddr,
                          unsigned ops, unsigned csCycles,
                          std::uint64_t *acquired);

/**
 * A hierarchical ticket lock over MESI: a per-socket ticket lock plus a
 * global ticket lock taken by the per-socket winner (HTL of
 * Mellor-Crummey & Scott, as used in the paper's Table 1).
 */
struct HierTicketLock
{
    Addr globalNext;    ///< global ticket dispenser
    Addr globalServing; ///< global serving counter
    std::vector<Addr> localNext;    ///< per-socket dispensers
    std::vector<Addr> localServing; ///< per-socket serving counters

    /** Allocates the lock's lines (dispenser/serving per socket). */
    static HierTicketLock make(Machine &machine);
};

sim::Process hierTicketLockLoop(MesiSystem &sys, HierTicketLock &lock,
                                unsigned core, unsigned ops,
                                unsigned csCycles,
                                std::uint64_t *acquired);

} // namespace syncron::coherence

#endif // SYNCRON_COHERENCE_MESI_HH
