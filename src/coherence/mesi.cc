#include "coherence/mesi.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/log.hh"
#include "common/units.hh"
#include "mem/allocator.hh"

namespace syncron::coherence {

namespace {
/// Directory SRAM lookup at the home memory controller.
constexpr Tick kDirLookupTicks = 2 * 1000; // 2 ns
/// Coherence request/response message sizes.
constexpr std::uint32_t kCohReqBits = 80;
constexpr std::uint32_t kCohDataBits = 80 + kCacheLineBytes * 8;
} // namespace

MesiSystem::MesiSystem(Machine &machine, unsigned numCores)
    : machine_(machine)
{
    const unsigned units = machine.config().numUnits;
    const unsigned perUnit = (numCores + units - 1) / units;
    coreUnit_.reserve(numCores);
    for (unsigned c = 0; c < numCores; ++c) {
        coreUnit_.push_back(std::min<UnitId>(c / perUnit, units - 1));
        l1_.push_back(std::make_unique<cache::Cache>(machine.config().l1,
                                                     machine.stats()));
    }
}

MesiSystem::DirEntry &
MesiSystem::dirEntry(Addr line)
{
    return dir_[line];
}

Tick
MesiSystem::hitLatency() const
{
    return static_cast<Tick>(machine_.config().l1.hitCycles)
           * kCoreClock.period();
}

bool
MesiSystem::localHit(unsigned core, Addr line, bool needExclusive) const
{
    auto it = dir_.find(line);
    if (it == dir_.end())
        return false;
    const DirEntry &e = it->second;
    if (!l1_[core]->contains(line))
        return false;
    if (e.state == DirState::Modified && e.owner == core)
        return true;
    if (e.state == DirState::Shared && bitSet(e.sharers, core))
        return !needExclusive;
    return false;
}

Tick
MesiSystem::missPath(unsigned core, Addr line, bool needExclusive,
                     Tick start)
{
    const UnitId myUnit = coreUnit_[core];
    const UnitId home = mem::unitOfAddr(line);
    DirEntry &e = dirEntry(line);

    // Request travels to the home directory. The directory serializes
    // the *lookup/update* of a line's entry (not the whole fill path,
    // which is pipelined in any real implementation).
    Tick t = machine_.routeMessage(start, myUnit, home, kCohReqBits);
    t = std::max(t, e.busyUntil) + kDirLookupTicks;
    e.busyUntil = t;

    if (e.state == DirState::Modified && e.owner != core) {
        // Fetch from the remote owner (cache-to-cache). Ownership
        // transfers (RFO) keep the line dirty in the new owner; only a
        // downgrade to Shared writes the line back to DRAM.
        const UnitId ownerUnit = coreUnit_[e.owner];
        Tick f = machine_.routeMessage(t, home, ownerUnit, kCohReqBits);
        f += hitLatency();
        l1_[e.owner]->invalidate(line);
        if (!needExclusive)
            machine_.dram(home).access(f, line, true, kCacheLineBytes);
        t = machine_.routeMessage(f, ownerUnit, myUnit, kCohDataBits);
    } else {
        // Clean (or self-owned) miss: fill from home DRAM.
        Tick f = machine_.dram(home).access(t, line, false,
                                            kCacheLineBytes);
        t = machine_.routeMessage(f, home, myUnit, kCohDataBits);
    }

    if (needExclusive) {
        // Invalidate all other sharers; completion waits for the
        // slowest acknowledgment.
        Tick inv = t;
        std::uint64_t sharers = e.sharers;
        while (sharers != 0) {
            const unsigned s = lowestSetBit(sharers);
            sharers = withoutBit(sharers, s);
            if (s == core)
                continue;
            Tick a = machine_.routeMessage(t, home, coreUnit_[s],
                                           kCohReqBits);
            l1_[s]->invalidate(line);
            a = machine_.routeMessage(a, coreUnit_[s], home, kCohReqBits);
            inv = std::max(inv, a);
        }
        t = inv;
        e.state = DirState::Modified;
        e.owner = core;
        e.sharers = withBit(0, core);
    } else {
        if (e.state == DirState::Modified)
            e.sharers = withBit(0, e.owner);
        e.state = DirState::Shared;
        e.sharers = withBit(e.sharers, core);
    }

    l1_[core]->access(line, needExclusive);
    return t;
}

Tick
MesiSystem::read(unsigned core, Addr addr, Tick start)
{
    const Addr line = lineAlign(addr);
    if (localHit(core, line, false)) {
        l1_[core]->access(line, false);
        return start + hitLatency();
    }
    return missPath(core, line, false, start);
}

Tick
MesiSystem::write(unsigned core, Addr addr, Tick start)
{
    const Addr line = lineAlign(addr);
    if (localHit(core, line, true)) {
        l1_[core]->access(line, true);
        return start + hitLatency();
    }
    return missPath(core, line, true, start);
}

std::pair<Tick, std::uint64_t>
MesiSystem::rmwSwap(unsigned core, Addr addr, std::uint64_t newValue,
                    Tick start)
{
    // Value updates apply in directory-serialization order, which the
    // sequential event loop makes identical to call order per line.
    const Tick done = write(core, addr, start);
    const std::uint64_t old = values_[addr];
    values_[addr] = newValue;
    return {done, old};
}

std::pair<Tick, std::uint64_t>
MesiSystem::rmwFetchAdd(unsigned core, Addr addr, std::uint64_t delta,
                        Tick start)
{
    const Tick done = write(core, addr, start);
    const std::uint64_t old = values_[addr];
    values_[addr] = old + delta;
    return {done, old};
}

std::uint64_t
MesiSystem::value(Addr addr) const
{
    auto it = values_.find(addr);
    return it == values_.end() ? 0 : it->second;
}

void
MesiSystem::setValue(Addr addr, std::uint64_t v)
{
    values_[addr] = v;
}

// ----------------------------------------------------------------------
// Lock algorithms over MESI
// ----------------------------------------------------------------------

sim::Process
ttasLockLoop(MesiSystem &sys, unsigned core, Addr lockAddr, unsigned ops,
             unsigned csCycles, std::uint64_t *acquired)
{
    sim::EventQueue &eq = sys.machineEq();
    for (unsigned i = 0; i < ops; ++i) {
        // Acquire: spin on cached reads with exponential backoff
        // (standard TTAS practice, as in the libslock implementations
        // the paper measures); attempt the swap when free.
        Tick backoff = kCoreClock.cycles(32);
        const Tick maxBackoff = kCoreClock.cycles(2048);
        for (;;) {
            Tick t = sys.read(core, lockAddr, eq.now());
            co_await sim::Delay{eq, t - eq.now()};
            if (sys.value(lockAddr) == 0) {
                auto [done, old] =
                    sys.rmwSwap(core, lockAddr, 1, eq.now());
                co_await sim::Delay{eq, done - eq.now()};
                if (old == 0)
                    break; // lock obtained
            }
            co_await sim::Delay{eq, backoff};
            backoff = std::min(backoff * 2, maxBackoff);
        }
        ++*acquired;
        co_await sim::Delay{eq, kCoreClock.cycles(csCycles)};
        // Release: store 0 (invalidates the spinning readers).
        const Tick rel = sys.rmwSwap(core, lockAddr, 0, eq.now()).first;
        co_await sim::Delay{eq, rel - eq.now()};
        co_await sim::Delay{eq, kCoreClock.cycles(16)};
    }
}

HierTicketLock
HierTicketLock::make(Machine &machine)
{
    HierTicketLock lock;
    mem::AddressSpace &space = machine.addrSpace();
    lock.globalNext = space.allocIn(0, kCacheLineBytes, kCacheLineBytes);
    lock.globalServing =
        space.allocIn(0, kCacheLineBytes, kCacheLineBytes);
    for (unsigned u = 0; u < machine.config().numUnits; ++u) {
        lock.localNext.push_back(
            space.allocIn(u, kCacheLineBytes, kCacheLineBytes));
        lock.localServing.push_back(
            space.allocIn(u, kCacheLineBytes, kCacheLineBytes));
    }
    return lock;
}

sim::Process
hierTicketLockLoop(MesiSystem &sys, HierTicketLock &lock, unsigned core,
                   unsigned ops, unsigned csCycles,
                   std::uint64_t *acquired)
{
    sim::EventQueue &eq = sys.machineEq();
    const UnitId socket = sys.unitOf(core);
    for (unsigned i = 0; i < ops; ++i) {
        // Level 1: local (per-socket) ticket.
        auto [t1, myLocal] =
            sys.rmwFetchAdd(core, lock.localNext[socket], 1, eq.now());
        co_await sim::Delay{eq, t1 - eq.now()};
        for (;;) {
            Tick t = sys.read(core, lock.localServing[socket], eq.now());
            co_await sim::Delay{eq, t - eq.now()};
            if (sys.value(lock.localServing[socket]) == myLocal)
                break;
            co_await sim::Delay{eq, kCoreClock.cycles(32)};
        }
        // Level 2: global ticket.
        auto [t2, myGlobal] =
            sys.rmwFetchAdd(core, lock.globalNext, 1, eq.now());
        co_await sim::Delay{eq, t2 - eq.now()};
        for (;;) {
            Tick t = sys.read(core, lock.globalServing, eq.now());
            co_await sim::Delay{eq, t - eq.now()};
            if (sys.value(lock.globalServing) == myGlobal)
                break;
            co_await sim::Delay{eq, kCoreClock.cycles(32)};
        }

        ++*acquired;
        co_await sim::Delay{eq, kCoreClock.cycles(csCycles)};

        // Release both levels.
        const Tick t3 =
            sys.rmwFetchAdd(core, lock.globalServing, 1, eq.now()).first;
        co_await sim::Delay{eq, t3 - eq.now()};
        const Tick t4 = sys.rmwFetchAdd(core, lock.localServing[socket],
                                        1, eq.now())
                            .first;
        co_await sim::Delay{eq, t4 - eq.now()};
        co_await sim::Delay{eq, kCoreClock.cycles(16)};
    }
}

} // namespace syncron::coherence
