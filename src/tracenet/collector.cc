#include "tracenet/collector.hh"

#include "common/log.hh"
#include "trace/format.hh"

namespace syncron::tracenet {

std::string
sanitizeStreamName(const std::string &name)
{
    // Bare file name only: no path separators, no dotfiles, printable
    // ASCII — the collector must never let a peer choose where on its
    // filesystem the trace lands.
    std::string out;
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                        || (c >= '0' && c <= '9') || c == '-'
                        || c == '_' || c == '.';
        out += ok ? c : '_';
    }
    while (!out.empty() && out.front() == '.')
        out.erase(out.begin());
    if (out.empty())
        out = "collected.trc";
    if (out.size() < 4 || out.substr(out.size() - 4) != ".trc")
        out += ".trc";
    return out;
}

CollectResult
collectOne(Transport &transport, const std::string &outDir,
           int idleTimeoutMs)
{
    CollectResult result;
    result.session = serveSession(transport, idleTimeoutMs);
    const SessionResult &s = result.session;

    const bool store =
        s.outcome != SessionOutcome::Failed || s.frames > 0;
    if (store && s.trace.numUnits > 0) {
        result.path = outDir + "/" + sanitizeStreamName(s.streamName);
        trace::writeTraceFile(s.trace, result.path);
    }

    switch (s.outcome) {
      case SessionOutcome::Completed:
        SYNCRON_INFORM("collected " << s.trace.records.size()
                                    << " records ("
                                    << s.frames << " frames) -> "
                                    << result.path);
        break;
      case SessionOutcome::Cancelled:
        SYNCRON_WARN("capture cancelled after "
                     << s.trace.records.size()
                     << " records; kept truncated image "
                     << (result.path.empty() ? std::string("(none)")
                                             : result.path));
        break;
      case SessionOutcome::Failed:
        SYNCRON_WARN("capture session failed: "
                     << s.error << "; "
                     << (result.path.empty()
                             ? std::string("nothing stored")
                             : "kept partial image " + result.path));
        break;
    }
    return result;
}

} // namespace syncron::tracenet
