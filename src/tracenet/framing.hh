/**
 * @file
 * Wire framing for the streaming trace service.
 *
 * The trace service moves a live run's sync-op stream from the
 * capturing process to a collector over a byte-stream transport
 * (socketpair or TCP). This layer — the fnet-style bottom of the stack,
 * below the marshaller and the session state machine — turns that byte
 * stream into discrete, request-id'd messages:
 *
 *   varint frameLen | varint type | varint requestId | varint seq
 *                   | payload[frameLen - header]
 *
 * frameLen counts every byte after its own varint, so a receiver can
 * buffer exactly one frame without understanding its type. All integers
 * are the trace container's LEB128 varints (trace/varint.hh) — one
 * encoding across the file format and the wire (decided contract,
 * versioned by kProtocolVersion carried in HELLO; bump on any layout
 * change, like `SYNCTRC`).
 *
 * Frame types mirror the request/response/cancel shape of the fsync
 * sync_engine exemplar:
 *
 *   HELLO  (c->s) open a capture session: protocol version, trace
 *                 container version, machine shape, stream name
 *   ACCEPT (s->c) session accepted (echoes the protocol version)
 *   FRAME  (c->s) one capture batch: primitive-table delta + records
 *   ACK    (s->c) cumulative receipt of FRAME/FIN seq
 *   CANCEL (c->s) abort; the collector keeps a valid truncated image
 *   FIN    (c->s) clean end of stream with final totals
 *   ERROR  (s->c) protocol violation (bad request id, bad version...)
 */

#ifndef SYNCRON_TRACENET_FRAMING_HH
#define SYNCRON_TRACENET_FRAMING_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace syncron::tracenet {

/** Wire-protocol version; HELLO carries it, ACCEPT echoes it. */
inline constexpr std::uint64_t kProtocolVersion = 1;

/** Message types of the capture session (see file comment). */
enum class FrameType : std::uint8_t
{
    Hello,
    Accept,
    Frame,
    Ack,
    Cancel,
    Fin,
    Error,
};

/** Printable frame-type name. */
const char *frameTypeName(FrameType type);

/** One decoded message. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::uint64_t requestId = 0;
    std::uint64_t seq = 0;
    std::string payload;
};

/**
 * Frames larger than this are rejected as malformed — a corrupt or
 * hostile length prefix must fail cleanly, not drive a giant
 * allocation. Capture batches are flushed well below this.
 */
inline constexpr std::uint64_t kMaxFrameBytes = 16ull << 20;

/** Appends the encoded frame to @p out. */
void encodeFrame(std::string &out, FrameType type,
                 std::uint64_t requestId, std::uint64_t seq,
                 std::string_view payload);

/**
 * Incremental frame decoder over a byte stream: feed() received chunks
 * in, next() yields complete frames as they become available. fatal()s
 * on malformed input (oversized or impossible lengths, unknown frame
 * types) — a framing error is never recoverable on a byte stream.
 */
class FrameDecoder
{
  public:
    /** Appends @p n received bytes. */
    void feed(const char *data, std::size_t n);

    /**
     * Decodes the next complete frame into @p out.
     * @return false when the buffer holds no complete frame yet
     */
    bool next(Frame &out);

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t buffered() const { return buf_.size() - consumed_; }

  private:
    std::string buf_;
    std::size_t consumed_ = 0;
};

} // namespace syncron::tracenet

#endif // SYNCRON_TRACENET_FRAMING_HH
