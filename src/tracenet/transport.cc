#include "tracenet/transport.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/log.hh"

namespace syncron::tracenet {

namespace {

/** Numeric IPv4 for @p host ("localhost" included); false on others. */
bool
resolveHost(const std::string &host, in_addr &out)
{
    if (host == "localhost")
        return ::inet_pton(AF_INET, "127.0.0.1", &out) == 1;
    return ::inet_pton(AF_INET, host.c_str(), &out) == 1;
}

} // namespace

bool
splitEndpoint(const std::string &endpoint, std::string &host,
              std::uint16_t &port)
{
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0
        || colon + 1 == endpoint.size()) {
        return false;
    }
    char *end = nullptr;
    errno = 0;
    const unsigned long p =
        std::strtoul(endpoint.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || errno != 0 || p > 65535)
        return false;
    host = endpoint.substr(0, colon);
    port = static_cast<std::uint16_t>(p);
    return true;
}

// -- Transport ---------------------------------------------------------

Transport::~Transport()
{
    close();
}

Transport::Transport(Transport &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

Transport &
Transport::operator=(Transport &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Transport::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Transport
Transport::connectTo(const std::string &endpoint, int timeoutMs,
                     std::string &error)
{
    error.clear();

    // "fd:N": adopt an already-connected descriptor (socketpair end).
    if (endpoint.rfind("fd:", 0) == 0) {
        char *end = nullptr;
        errno = 0;
        const long fd = std::strtol(endpoint.c_str() + 3, &end, 10);
        if (end == nullptr || *end != '\0' || errno != 0 || fd < 0) {
            error = "bad fd endpoint '" + endpoint + "'";
            return Transport();
        }
        return Transport(static_cast<int>(fd));
    }

    std::string host;
    std::uint16_t port = 0;
    if (!splitEndpoint(endpoint, host, port)) {
        error = "bad endpoint '" + endpoint
                + "' (need host:port or fd:N)";
        return Transport();
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (!resolveHost(host, addr.sin_addr)) {
        error = "cannot resolve host '" + host
                + "' (numeric IPv4 or localhost)";
        return Transport();
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return Transport();
    }
    // Connect with a deadline: nonblocking connect, then poll.
    timeval tv{};
    tv.tv_sec = timeoutMs / 1000;
    tv.tv_usec = (timeoutMs % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        error = std::string("connect ") + endpoint + ": "
                + std::strerror(errno);
        ::close(fd);
        return Transport();
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Transport(fd);
}

std::pair<Transport, Transport>
Transport::socketPair()
{
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        SYNCRON_FATAL("socketpair: " << std::strerror(errno));
    return {Transport(fds[0]), Transport(fds[1])};
}

bool
Transport::sendAll(const void *data, std::size_t n)
{
    if (fd_ < 0)
        return false;
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        // MSG_NOSIGNAL: a vanished collector must surface as EPIPE,
        // not kill the capturing process with SIGPIPE.
        const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += sent;
        n -= static_cast<std::size_t>(sent);
    }
    return true;
}

long
Transport::recvSome(void *data, std::size_t n, int timeoutMs)
{
    if (fd_ < 0)
        return -1;
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    for (;;) {
        const int ready = ::poll(&pfd, 1, timeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (ready == 0)
            return 0; // timeout
        break;
    }
    for (;;) {
        const ssize_t got = ::recv(fd_, data, n, 0);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0)
            return -1; // closed (0) or error (<0): both terminal
        return static_cast<long>(got);
    }
}

// -- Listener ----------------------------------------------------------

Listener::~Listener()
{
    close();
}

Listener::Listener(Listener &&other) noexcept
    : fd_(other.fd_), port_(other.port_)
{
    other.fd_ = -1;
}

Listener &
Listener::operator=(Listener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        port_ = other.port_;
        other.fd_ = -1;
    }
    return *this;
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Listener
Listener::listen(const std::string &endpoint)
{
    std::string host;
    std::uint16_t port = 0;
    if (!splitEndpoint(endpoint, host, port))
        SYNCRON_FATAL("bad listen endpoint '" << endpoint
                                              << "' (need host:port)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (!resolveHost(host, addr.sin_addr))
        SYNCRON_FATAL("cannot resolve listen host '" << host << "'");

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        SYNCRON_FATAL("socket: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0) {
        const int err = errno;
        ::close(fd);
        SYNCRON_FATAL("bind " << endpoint << ": "
                              << std::strerror(err));
    }
    if (::listen(fd, 8) != 0) {
        const int err = errno;
        ::close(fd);
        SYNCRON_FATAL("listen " << endpoint << ": "
                                << std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len)
        != 0) {
        const int err = errno;
        ::close(fd);
        SYNCRON_FATAL("getsockname: " << std::strerror(err));
    }

    Listener l;
    l.fd_ = fd;
    l.port_ = ntohs(bound.sin_port);
    return l;
}

Transport
Listener::accept(int timeoutMs)
{
    if (fd_ < 0)
        return Transport();
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    for (;;) {
        const int ready = ::poll(&pfd, 1, timeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return Transport();
        }
        if (ready == 0)
            return Transport(); // timeout
        break;
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0)
        return Transport();
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Transport(fd);
}

} // namespace syncron::tracenet
