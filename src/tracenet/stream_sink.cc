#include "tracenet/stream_sink.hh"

#include <random>

#include "common/log.hh"

namespace syncron::tracenet {

namespace {

/** Fresh request id per session (collectors reject mixed ids). */
std::uint64_t
mintRequestId()
{
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) | rd();
}

} // namespace

StreamingTraceSink::StreamingTraceSink(const SystemConfig &cfg,
                                       std::string endpoint,
                                       std::string streamName,
                                       RetryPolicy policy)
    : cfg_(cfg), capture_(cfg), streamName_(std::move(streamName)),
      client_(std::move(endpoint), policy, mintRequestId())
{
}

void
StreamingTraceSink::record(CoreId core, const sync::SyncRequest &req,
                           Tick issued, Tick completed)
{
    capture_.record(core, req, issued, completed);
    if (failed_)
        return;

    if (!started_) {
        started_ = true;
        HelloMsg hello;
        hello.protocolVersion = kProtocolVersion;
        hello.traceVersion = trace::kTraceVersion;
        hello.numUnits = cfg_.numUnits;
        hello.clientCoresPerUnit = cfg_.clientCoresPerUnit;
        hello.streamName = streamName_;
        if (!client_.begin(hello)) {
            failed_ = true;
            error_ = client_.error();
            SYNCRON_WARN("trace streaming unavailable, capturing "
                         "locally: "
                         << error_);
            return;
        }
    }

    if (capture_.trace().records.size() - flushed_ >= kFlushRecords)
        flush();
}

void
StreamingTraceSink::recordDestroy(Addr var)
{
    capture_.recordDestroy(var);
}

void
StreamingTraceSink::flush()
{
    const trace::Trace &t = capture_.trace();
    const std::size_t pending = t.records.size() - flushed_;
    if (pending == 0)
        return;
    const std::string payload = encoder_.encode(
        t.primitives, t.records.data() + flushed_, pending);
    if (!client_.sendBatch(payload)) {
        failed_ = true;
        error_ = client_.error();
        SYNCRON_WARN("trace stream lost mid-run, falling back to "
                     "local capture: "
                     << error_);
        return;
    }
    flushed_ = t.records.size();
}

bool
StreamingTraceSink::finish()
{
    if (failed_ || !started_)
        return false;
    flush();
    if (failed_)
        return false;
    FinMsg fin;
    fin.totalRecords = capture_.trace().records.size();
    fin.totalPrimitives = capture_.trace().primitives.size();
    if (!client_.finish(fin)) {
        failed_ = true;
        error_ = client_.error();
        SYNCRON_WARN("collector lost the end of the stream, falling "
                     "back to local capture: "
                     << error_);
        return false;
    }
    return true;
}

void
StreamingTraceSink::cancel()
{
    client_.cancel();
    if (!failed_) {
        failed_ = true;
        error_ = "stream cancelled";
    }
}

} // namespace syncron::tracenet
