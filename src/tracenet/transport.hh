/**
 * @file
 * Byte-stream transport under the trace service — the one place in the
 * tree that touches the POSIX socket API (the contract lint's
 * tracenet-scope rule confines raw socket calls to src/tracenet/).
 *
 * Three ways to get a connected Transport:
 *
 *   - Transport::connectTo("host:port", timeoutMs) — TCP to a
 *     collector; returns an invalid Transport on failure (the session
 *     layer owns retry/backoff, so connection failure is a value here,
 *     never a fatal).
 *   - Transport::connectTo("fd:N", ...) — adopt an already-connected
 *     descriptor, e.g. one end of a socketpair; how in-process tests
 *     and forked collectors wire up without a listening port.
 *   - Listener::listen("host:port").accept() — the collector side;
 *     port 0 picks an ephemeral port, boundPort() reports it.
 *
 * All sends are full-buffer ("send all or report failure"); receives
 * take a poll() timeout so the session layer can implement ACK
 * deadlines without nonblocking-socket state machines.
 */

#ifndef SYNCRON_TRACENET_TRANSPORT_HH
#define SYNCRON_TRACENET_TRANSPORT_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace syncron::tracenet {

/** One connected byte-stream endpoint (TCP or socketpair). */
class Transport
{
  public:
    /** An invalid (unconnected) transport. */
    Transport() = default;
    ~Transport();

    Transport(Transport &&other) noexcept;
    Transport &operator=(Transport &&other) noexcept;
    Transport(const Transport &) = delete;
    Transport &operator=(const Transport &) = delete;

    /**
     * Connects to @p endpoint — "host:port" (IPv4 dotted or
     * "localhost") or "fd:N" (adopt descriptor N). On failure returns
     * an invalid Transport and stores the reason in @p error.
     */
    static Transport connectTo(const std::string &endpoint,
                               int timeoutMs, std::string &error);

    /** A connected AF_UNIX socketpair (first, second). */
    static std::pair<Transport, Transport> socketPair();

    bool valid() const { return fd_ >= 0; }

    /**
     * Relinquishes ownership of the descriptor (the transport becomes
     * invalid). How a socketpair end is handed to a "fd:N" endpoint
     * string without two owners closing the same fd.
     */
    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /**
     * Sends the whole buffer.
     * @return false on any transport error (peer gone, EPIPE...)
     */
    bool sendAll(const void *data, std::size_t n);

    /**
     * Receives up to @p n bytes, waiting at most @p timeoutMs.
     * @return bytes received (> 0); 0 on timeout; -1 when the peer
     *         closed or the transport failed
     */
    long recvSome(void *data, std::size_t n, int timeoutMs);

    void close();

  private:
    explicit Transport(int fd) : fd_(fd) {}
    friend class Listener;

    int fd_ = -1;
};

/** A listening TCP endpoint (the collector side). */
class Listener
{
  public:
    Listener() = default;
    ~Listener();

    Listener(Listener &&other) noexcept;
    Listener &operator=(Listener &&other) noexcept;
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Binds and listens on @p endpoint ("host:port"; port 0 = pick an
     * ephemeral port). fatal()s on failure — a collector that cannot
     * bind has nothing to degrade to.
     */
    static Listener listen(const std::string &endpoint);

    /** The bound port (after listen; resolves port 0). */
    std::uint16_t boundPort() const { return port_; }

    /**
     * Accepts one connection, waiting at most @p timeoutMs
     * (-1 = forever). Returns an invalid Transport on timeout.
     */
    Transport accept(int timeoutMs);

    bool valid() const { return fd_ >= 0; }
    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/**
 * Splits "host:port" into its parts.
 * @return false when @p endpoint is not of that shape
 */
bool splitEndpoint(const std::string &endpoint, std::string &host,
                   std::uint16_t &port);

} // namespace syncron::tracenet

#endif // SYNCRON_TRACENET_TRANSPORT_HH
