/**
 * @file
 * The capture-session state machine — the top of the tracenet stack,
 * modeled on the fsync sync_engine's request/response/cancel flow:
 *
 *        capture (client)                         collector (server)
 *        ---- HELLO {version, shape, name} --->   mandatory
 *       <--- ACCEPT | ERROR ----------------- -   mandatory
 *        ---- FRAME seq=1..n ----------------->   mandatory
 *       <--- ACK seq ------------------------ -   per frame
 *        ---- CANCEL ------------------------->   optional (abort)
 *        ---- FIN {totals} ------------------->   mandatory
 *       <--- ACK fin-seq --------------------- -   mandatory
 *
 * Client side (CaptureClient): connects with bounded retry and
 * exponential backoff, then streams frames under a bounded
 * unacked-frame window; every missing ACK deadline, transport error, or
 * server ERROR moves the session to Failed — the caller (the streaming
 * sink) degrades to local-file capture, it never loses the run's trace.
 *
 * Server side (CollectorSession): drives one connection to completion
 * and yields the reassembled Trace. A FIN whose totals match produces a
 * Completed image; a CANCEL — or a mid-stream disconnect — produces a
 * Cancelled/Failed result whose partial trace is still a valid,
 * truncated image (every acked frame is in it), which the collector
 * persists rather than discards.
 */

#ifndef SYNCRON_TRACENET_SESSION_HH
#define SYNCRON_TRACENET_SESSION_HH

#include <cstdint>
#include <string>

#include "tracenet/framing.hh"
#include "tracenet/marshal.hh"
#include "tracenet/transport.hh"
#include "trace/format.hh"

namespace syncron::tracenet {

/** Client-side timeout/retry knobs (defaults suit a local collector). */
struct RetryPolicy
{
    unsigned connectAttempts = 3;  ///< connect() tries before giving up
    unsigned backoffBaseMs = 20;   ///< sleep doubles per failed attempt
    int connectTimeoutMs = 1000;   ///< per-attempt connect deadline
    int ackTimeoutMs = 2000;       ///< ACK / ACCEPT deadline
    unsigned windowFrames = 8;     ///< max unacked FRAMEs in flight
};

/** Client session states (see file comment for the transitions). */
enum class ClientState
{
    Idle,      ///< constructed, not yet connected
    Streaming, ///< HELLO acknowledged, FRAMEs flowing
    Done,      ///< FIN acknowledged
    Cancelled, ///< CANCEL sent
    Failed,    ///< transport/protocol failure -> degrade to local file
};

/** Printable client-state name. */
const char *clientStateName(ClientState state);

/** The capture process's end of one streaming session. */
class CaptureClient
{
  public:
    /**
     * @p requestId tags every message of this session; the collector
     * rejects frames whose id differs from the HELLO's.
     */
    CaptureClient(std::string endpoint, RetryPolicy policy,
                  std::uint64_t requestId);

    CaptureClient(const CaptureClient &) = delete;
    CaptureClient &operator=(const CaptureClient &) = delete;

    /**
     * Connects (with retry/backoff), sends HELLO, and awaits ACCEPT.
     * @return true on Streaming; false leaves the session Failed
     */
    bool begin(const HelloMsg &hello);

    /**
     * Sends one capture batch (already marshalled by BatchEncoder).
     * Blocks while the unacked window is full. false -> Failed.
     */
    bool sendBatch(const std::string &payload);

    /**
     * Sends FIN and waits until every frame (FIN included) is acked.
     * @return true on Done; false leaves the session Failed
     */
    bool finish(const FinMsg &fin);

    /** Aborts the stream: sends CANCEL (best effort) and closes. */
    void cancel();

    ClientState state() const { return state_; }
    std::uint64_t framesSent() const { return seq_; }
    /** Failure reason once state() == Failed. */
    const std::string &error() const { return error_; }

  private:
    bool sendFrame(FrameType type, const std::string &payload);
    /** Drains ACKs until <= @p maxUnacked remain in flight. */
    bool awaitAcks(std::uint64_t maxUnacked);
    void fail(const std::string &why);

    std::string endpoint_;
    RetryPolicy policy_;
    std::uint64_t requestId_;
    Transport transport_;
    FrameDecoder decoder_;
    ClientState state_ = ClientState::Idle;
    std::uint64_t seq_ = 0;      ///< last sent frame seq
    std::uint64_t ackedSeq_ = 0; ///< highest cumulative ACK received
    std::string error_;
};

/** How a collector session ended. */
enum class SessionOutcome
{
    Completed, ///< FIN received, totals matched
    Cancelled, ///< CANCEL received; trace is a valid truncated image
    Failed,    ///< protocol violation or disconnect; partial trace kept
};

/** Printable outcome name. */
const char *sessionOutcomeName(SessionOutcome outcome);

/** Result of serving one capture session. */
struct SessionResult
{
    SessionOutcome outcome = SessionOutcome::Failed;
    std::string error;      ///< diagnostic for Failed sessions
    std::string streamName; ///< from HELLO (sanitized; may be empty)
    trace::Trace trace;     ///< everything received and acked
    std::uint64_t frames = 0; ///< FRAME messages applied
};

/**
 * Serves one connection: HELLO handshake, frame loop, FIN/CANCEL
 * teardown. @p idleTimeoutMs bounds how long the server waits for the
 * next byte before declaring the client gone.
 */
SessionResult serveSession(Transport &transport, int idleTimeoutMs);

} // namespace syncron::tracenet

#endif // SYNCRON_TRACENET_SESSION_HH
