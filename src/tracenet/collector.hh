/**
 * @file
 * The collector side of the trace service as a reusable harness:
 * listen, serve one capture session, persist the received trace with
 * the stock TraceWriter — which is what makes the collected file
 * byte-identical to a local --trace-out capture of the same run.
 *
 * tools/trace_collectd wraps this in a CLI; the loopback tests drive it
 * in-process on a socketpair.
 */

#ifndef SYNCRON_TRACENET_COLLECTOR_HH
#define SYNCRON_TRACENET_COLLECTOR_HH

#include <string>

#include "tracenet/session.hh"
#include "tracenet/transport.hh"

namespace syncron::tracenet {

/** What one served session left on disk. */
struct CollectResult
{
    SessionResult session;
    std::string path; ///< written trace file ("" when nothing stored)
};

/**
 * Serves one session on @p transport and writes the resulting trace
 * under @p outDir. Completed and Cancelled sessions store their
 * (possibly truncated) image; Failed sessions store a partial image
 * only when any frame was applied. The file name comes from the
 * HELLO's streamName, sanitized to a bare file name; empty or unusable
 * names fall back to "collected.trc".
 */
CollectResult collectOne(Transport &transport, const std::string &outDir,
                         int idleTimeoutMs);

/** streamName -> safe bare file name (exposed for tests). */
std::string sanitizeStreamName(const std::string &name);

} // namespace syncron::tracenet

#endif // SYNCRON_TRACENET_COLLECTOR_HH
