#include "tracenet/marshal.hh"

#include "common/log.hh"
#include "sync/opcodes.hh"
#include "trace/varint.hh"

namespace syncron::tracenet {

using trace::appendVarint;
using trace::VarintCursor;

namespace {

VarintCursor
payloadCursor(const std::string &payload, const char *what)
{
    const auto *base =
        reinterpret_cast<const unsigned char *>(payload.data());
    return VarintCursor(base, base + payload.size(), what);
}

template <typename Enum>
Enum
checkedEnum(std::uint64_t raw, std::uint64_t last, const char *what)
{
    if (raw > last)
        SYNCRON_FATAL("trace-service payload carries out-of-range "
                      << what << " value " << raw);
    return static_cast<Enum>(raw);
}

void
appendString(std::string &buf, const std::string &s)
{
    appendVarint(buf, s.size());
    buf += s;
}

std::string
getString(VarintCursor &cur)
{
    const std::uint64_t n = cur.get();
    if (n > cur.remaining())
        SYNCRON_FATAL("trace-service payload truncated inside a string");
    const unsigned char *p = cur.getBytes(static_cast<std::size_t>(n));
    return std::string(reinterpret_cast<const char *>(p),
                       static_cast<std::size_t>(n));
}

} // namespace

std::string
encodeHello(const HelloMsg &msg)
{
    std::string buf;
    appendVarint(buf, msg.protocolVersion);
    appendVarint(buf, msg.traceVersion);
    appendVarint(buf, msg.numUnits);
    appendVarint(buf, msg.clientCoresPerUnit);
    appendString(buf, msg.streamName);
    return buf;
}

HelloMsg
decodeHello(const std::string &payload)
{
    VarintCursor cur = payloadCursor(payload, "HELLO payload");
    HelloMsg msg;
    msg.protocolVersion = cur.get();
    msg.traceVersion = cur.get();
    msg.numUnits = static_cast<std::uint32_t>(cur.get());
    msg.clientCoresPerUnit = static_cast<std::uint32_t>(cur.get());
    msg.streamName = getString(cur);
    if (!cur.atEnd())
        SYNCRON_FATAL("trailing bytes in HELLO payload");
    return msg;
}

std::string
encodeFin(const FinMsg &msg)
{
    std::string buf;
    appendVarint(buf, msg.totalRecords);
    appendVarint(buf, msg.totalPrimitives);
    return buf;
}

FinMsg
decodeFin(const std::string &payload)
{
    VarintCursor cur = payloadCursor(payload, "FIN payload");
    FinMsg msg;
    msg.totalRecords = cur.get();
    msg.totalPrimitives = cur.get();
    if (!cur.atEnd())
        SYNCRON_FATAL("trailing bytes in FIN payload");
    return msg;
}

std::string
encodeError(const std::string &message)
{
    return message;
}

std::string
BatchEncoder::encode(const std::vector<trace::TracePrimitive> &table,
                     const trace::TraceRecord *records,
                     std::size_t numRecords)
{
    SYNCRON_ASSERT(table.size() >= sentTable_.size(),
                   "primitive table shrank between capture flushes");

    std::string buf;
    // -- Table delta: new entries plus amended ones (last writer wins
    // on the collector, matching the local capture's final table).
    std::vector<std::uint32_t> delta;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (i >= sentTable_.size() || !(table[i] == sentTable_[i]))
            delta.push_back(static_cast<std::uint32_t>(i));
    }
    appendVarint(buf, delta.size());
    for (std::uint32_t id : delta) {
        const trace::TracePrimitive &p = table[id];
        appendVarint(buf, id);
        appendVarint(buf, static_cast<std::uint64_t>(p.kind));
        appendVarint(buf, p.home);
        appendVarint(buf, p.param);
        appendVarint(buf, static_cast<std::uint64_t>(p.scope));
    }
    sentTable_ = table;

    // -- Records, in the container's exact layout; the issue-delta
    // chain continues across frames.
    appendVarint(buf, numRecords);
    for (std::size_t i = 0; i < numRecords; ++i) {
        const trace::TraceRecord &r = records[i];
        SYNCRON_ASSERT(r.completed >= r.issued,
                       "record completed before it was issued");
        appendVarint(buf,
                     trace::zigzag(static_cast<std::int64_t>(r.issued)
                                   - static_cast<std::int64_t>(
                                       prevIssued_)));
        appendVarint(buf, r.completed - r.issued);
        appendVarint(buf, r.core);
        appendVarint(buf, static_cast<std::uint64_t>(r.kind));
        appendVarint(buf, r.prim);
        if (r.kind == sync::OpKind::CondWait)
            appendVarint(buf, r.assocPrim);
        prevIssued_ = r.issued;
    }
    return buf;
}

void
BatchDecoder::decode(const std::string &payload, trace::Trace &t)
{
    VarintCursor cur = payloadCursor(payload, "FRAME payload");

    const std::uint64_t deltaCount = cur.get();
    for (std::uint64_t i = 0; i < deltaCount; ++i) {
        const std::uint64_t id = cur.get();
        if (id > t.primitives.size()) {
            // Upserts may extend the table, but only densely — a gap
            // means frames were lost or reordered.
            SYNCRON_FATAL("FRAME table delta names primitive "
                          << id << " past the table end ("
                          << t.primitives.size() << " entries)");
        }
        trace::TracePrimitive p;
        p.kind = checkedEnum<trace::PrimKind>(
            cur.get(),
            static_cast<std::uint64_t>(trace::PrimKind::CondVar),
            "PrimKind");
        p.home = static_cast<UnitId>(cur.get());
        if (p.home >= t.numUnits)
            SYNCRON_FATAL("FRAME table delta homes primitive "
                          << id << " in unit " << p.home << " of a "
                          << t.numUnits << "-unit machine");
        p.param = static_cast<std::uint32_t>(cur.get());
        p.scope = checkedEnum<sync::BarrierScope>(
            cur.get(),
            static_cast<std::uint64_t>(sync::BarrierScope::AcrossUnits),
            "BarrierScope");
        if (id == t.primitives.size())
            t.primitives.push_back(p);
        else
            t.primitives[static_cast<std::size_t>(id)] = p;
    }

    const std::uint64_t recordCount = cur.get();
    for (std::uint64_t i = 0; i < recordCount; ++i) {
        trace::TraceRecord r;
        const std::int64_t issued =
            static_cast<std::int64_t>(prevIssued_)
            + trace::unzigzag(cur.get());
        if (issued < 0)
            SYNCRON_FATAL("FRAME record has a negative issue tick");
        r.issued = static_cast<Tick>(issued);
        r.completed = r.issued + cur.get();
        r.core = static_cast<std::uint32_t>(cur.get());
        if (r.core >= t.numClientCores())
            SYNCRON_FATAL("FRAME record issued by core "
                          << r.core << " of a " << t.numClientCores()
                          << "-core machine");
        r.kind = checkedEnum<sync::OpKind>(
            cur.get(),
            static_cast<std::uint64_t>(sync::OpKind::CondBroadcast),
            "OpKind");
        r.prim = static_cast<std::uint32_t>(cur.get());
        if (r.prim >= t.primitives.size())
            SYNCRON_FATAL("FRAME record names unknown primitive "
                          << r.prim);
        if (trace::primKindOf(r.kind) != t.primitives[r.prim].kind) {
            SYNCRON_FATAL("FRAME record applies "
                          << sync::opKindName(r.kind) << " to a "
                          << trace::primKindName(
                                 t.primitives[r.prim].kind));
        }
        if (r.kind == sync::OpKind::CondWait) {
            r.assocPrim = static_cast<std::uint32_t>(cur.get());
            if (r.assocPrim >= t.primitives.size()
                || t.primitives[r.assocPrim].kind
                       != trace::PrimKind::Lock) {
                SYNCRON_FATAL("FRAME cond_wait record without a valid "
                              "associated lock");
            }
        }
        t.records.push_back(r);
        prevIssued_ = r.issued;
    }

    if (!cur.atEnd())
        SYNCRON_FATAL("trailing bytes in FRAME payload");
}

} // namespace syncron::tracenet
