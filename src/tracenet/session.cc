#include "tracenet/session.hh"

#include <chrono>
#include <thread>

#include "common/log.hh"

namespace syncron::tracenet {

const char *
clientStateName(ClientState state)
{
    switch (state) {
      case ClientState::Idle:
        return "idle";
      case ClientState::Streaming:
        return "streaming";
      case ClientState::Done:
        return "done";
      case ClientState::Cancelled:
        return "cancelled";
      case ClientState::Failed:
        return "failed";
    }
    return "?";
}

const char *
sessionOutcomeName(SessionOutcome outcome)
{
    switch (outcome) {
      case SessionOutcome::Completed:
        return "completed";
      case SessionOutcome::Cancelled:
        return "cancelled";
      case SessionOutcome::Failed:
        return "failed";
    }
    return "?";
}

// -- CaptureClient ------------------------------------------------------

CaptureClient::CaptureClient(std::string endpoint, RetryPolicy policy,
                             std::uint64_t requestId)
    : endpoint_(std::move(endpoint)), policy_(policy),
      requestId_(requestId)
{
}

void
CaptureClient::fail(const std::string &why)
{
    if (state_ != ClientState::Failed) {
        state_ = ClientState::Failed;
        error_ = why;
    }
    transport_.close();
}

bool
CaptureClient::sendFrame(FrameType type, const std::string &payload)
{
    std::string wire;
    encodeFrame(wire, type, requestId_, ++seq_, payload);
    if (!transport_.sendAll(wire.data(), wire.size())) {
        fail(std::string("send ") + frameTypeName(type)
             + ": transport closed");
        return false;
    }
    return true;
}

bool
CaptureClient::awaitAcks(std::uint64_t maxUnacked)
{
    while (seq_ - ackedSeq_ > maxUnacked) {
        Frame frame;
        while (!decoder_.next(frame)) {
            char buf[4096];
            const long got =
                transport_.recvSome(buf, sizeof(buf), policy_.ackTimeoutMs);
            if (got == 0) {
                fail("timed out waiting for collector ACK");
                return false;
            }
            if (got < 0) {
                fail("collector closed the connection mid-stream");
                return false;
            }
            decoder_.feed(buf, static_cast<std::size_t>(got));
        }
        if (frame.requestId != requestId_) {
            fail("collector replied for a different request id");
            return false;
        }
        if (frame.type == FrameType::Error) {
            fail("collector rejected the stream: " + frame.payload);
            return false;
        }
        // ACCEPT is the ACK of the HELLO; plain ACK covers the rest.
        if (frame.type != FrameType::Ack
            && frame.type != FrameType::Accept) {
            fail(std::string("unexpected ") + frameTypeName(frame.type)
                 + " from collector");
            return false;
        }
        if (frame.seq < ackedSeq_ || frame.seq > seq_) {
            fail("collector acked out-of-window frame");
            return false;
        }
        ackedSeq_ = frame.seq; // cumulative
    }
    return true;
}

bool
CaptureClient::begin(const HelloMsg &hello)
{
    SYNCRON_ASSERT(state_ == ClientState::Idle,
                   "begin() on a session that already started");

    // Connect with bounded retry and doubling backoff: a collector
    // still coming up should not fail the capture, but a dead endpoint
    // must degrade quickly to local-file capture.
    std::string connectError;
    unsigned backoffMs = policy_.backoffBaseMs;
    for (unsigned attempt = 0; attempt < policy_.connectAttempts;
         ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoffMs));
            backoffMs *= 2;
        }
        transport_ = Transport::connectTo(
            endpoint_, policy_.connectTimeoutMs, connectError);
        if (transport_.valid())
            break;
    }
    if (!transport_.valid()) {
        fail("cannot reach collector at " + endpoint_ + " after "
             + std::to_string(policy_.connectAttempts) + " attempts ("
             + connectError + ")");
        return false;
    }

    if (!sendFrame(FrameType::Hello, encodeHello(hello)))
        return false;

    // The handshake is strict request/response: ACCEPT (as an ACK of
    // the HELLO's seq) before any FRAME may flow.
    if (!awaitAcks(0))
        return false;
    state_ = ClientState::Streaming;
    return true;
}

bool
CaptureClient::sendBatch(const std::string &payload)
{
    if (state_ != ClientState::Streaming)
        return false;
    if (!sendFrame(FrameType::Frame, payload))
        return false;
    // Windowed flow control: block only once windowFrames are in
    // flight, so capture flushes overlap collector processing.
    return awaitAcks(policy_.windowFrames);
}

bool
CaptureClient::finish(const FinMsg &fin)
{
    if (state_ != ClientState::Streaming)
        return false;
    if (!sendFrame(FrameType::Fin, encodeFin(fin)))
        return false;
    if (!awaitAcks(0))
        return false;
    state_ = ClientState::Done;
    transport_.close();
    return true;
}

void
CaptureClient::cancel()
{
    if (state_ == ClientState::Streaming) {
        // Best effort: the collector keeps the acked prefix either way.
        sendFrame(FrameType::Cancel, std::string());
        state_ = ClientState::Cancelled;
    }
    transport_.close();
}

// -- serveSession -------------------------------------------------------

namespace {

/** ACCEPT for HELLO, plain ACK for everything after. */
bool
sendAck(Transport &transport, FrameType type, std::uint64_t requestId,
        std::uint64_t seq)
{
    std::string wire;
    encodeFrame(wire, type, requestId, seq, std::string_view());
    return transport.sendAll(wire.data(), wire.size());
}

bool
sendError(Transport &transport, std::uint64_t requestId,
          std::uint64_t seq, const std::string &message)
{
    std::string wire;
    encodeFrame(wire, FrameType::Error, requestId, seq,
                encodeError(message));
    return transport.sendAll(wire.data(), wire.size());
}

/** Blocks for the next frame. false -> timeout/disconnect in @p err. */
bool
nextFrame(Transport &transport, FrameDecoder &decoder, int timeoutMs,
          Frame &frame, std::string &err)
{
    while (!decoder.next(frame)) {
        char buf[4096];
        const long got = transport.recvSome(buf, sizeof(buf), timeoutMs);
        if (got == 0) {
            err = "timed out waiting for the capture client";
            return false;
        }
        if (got < 0) {
            err = "capture client disconnected mid-stream";
            return false;
        }
        decoder.feed(buf, static_cast<std::size_t>(got));
    }
    return true;
}

} // namespace

SessionResult
serveSession(Transport &transport, int idleTimeoutMs)
{
    SessionResult result;
    FrameDecoder decoder;
    std::string err;

    // -- HELLO handshake ----------------------------------------------
    Frame frame;
    if (!nextFrame(transport, decoder, idleTimeoutMs, frame, err)) {
        result.error = err;
        return result;
    }
    if (frame.type != FrameType::Hello) {
        result.error = std::string("expected HELLO, got ")
                       + frameTypeName(frame.type);
        sendError(transport, frame.requestId, frame.seq, result.error);
        return result;
    }
    HelloMsg hello;
    try {
        hello = decodeHello(frame.payload);
    } catch (const std::exception &e) {
        result.error = e.what();
        sendError(transport, frame.requestId, frame.seq, result.error);
        return result;
    }
    if (hello.protocolVersion != kProtocolVersion) {
        result.error = "unsupported trace-service protocol version "
                       + std::to_string(hello.protocolVersion)
                       + " (this collector speaks "
                       + std::to_string(kProtocolVersion) + ")";
        sendError(transport, frame.requestId, frame.seq, result.error);
        return result;
    }
    if (hello.traceVersion != trace::kTraceVersion) {
        result.error = "capture speaks trace container version "
                       + std::to_string(hello.traceVersion)
                       + " (this collector writes version "
                       + std::to_string(trace::kTraceVersion) + ")";
        sendError(transport, frame.requestId, frame.seq, result.error);
        return result;
    }
    if (hello.numUnits == 0 || hello.clientCoresPerUnit == 0) {
        result.error = "HELLO describes a machine with no client cores";
        sendError(transport, frame.requestId, frame.seq, result.error);
        return result;
    }
    const std::uint64_t requestId = frame.requestId;
    result.streamName = hello.streamName;
    result.trace.numUnits = hello.numUnits;
    result.trace.clientCoresPerUnit = hello.clientCoresPerUnit;
    if (!sendAck(transport, FrameType::Accept, requestId, frame.seq)) {
        result.error = "capture client vanished during the handshake";
        return result;
    }

    // -- Frame loop ----------------------------------------------------
    BatchDecoder batches;
    for (;;) {
        if (!nextFrame(transport, decoder, idleTimeoutMs, frame, err)) {
            // Disconnect before FIN: keep the acked prefix — it is a
            // valid truncated image — but report the session failed.
            result.error = err;
            return result;
        }
        if (frame.requestId != requestId) {
            // A frame from some other request: reject it and the
            // session, keeping the partial image received so far.
            result.error = "frame carries request id "
                           + std::to_string(frame.requestId)
                           + " on a session opened as "
                           + std::to_string(requestId);
            sendError(transport, requestId, frame.seq, result.error);
            return result;
        }

        switch (frame.type) {
          case FrameType::Frame:
            try {
                batches.decode(frame.payload, result.trace);
            } catch (const std::exception &e) {
                result.error = e.what();
                sendError(transport, requestId, frame.seq, result.error);
                return result;
            }
            ++result.frames;
            // A failed ACK send races a deliberate cancel-and-close:
            // the client may have sent CANCEL (or FIN) and hung up
            // without reading this ACK, and that verdict can already
            // sit in the receive buffer. Keep draining — if the peer
            // really vanished mid-stream, the next read fails and the
            // session is reported Failed there.
            sendAck(transport, FrameType::Ack, requestId, frame.seq);
            break;

          case FrameType::Cancel:
            // Deliberate abort: everything decoded so far is a valid,
            // truncatable image. No ACK owed — the client is gone.
            result.outcome = SessionOutcome::Cancelled;
            return result;

          case FrameType::Fin: {
            FinMsg fin;
            try {
                fin = decodeFin(frame.payload);
            } catch (const std::exception &e) {
                result.error = e.what();
                sendError(transport, requestId, frame.seq, result.error);
                return result;
            }
            if (fin.totalRecords != result.trace.records.size()
                || fin.totalPrimitives
                       != result.trace.primitives.size()) {
                result.error =
                    "FIN totals disagree with the stream (got "
                    + std::to_string(result.trace.records.size())
                    + " records / "
                    + std::to_string(result.trace.primitives.size())
                    + " primitives, FIN claims "
                    + std::to_string(fin.totalRecords) + " / "
                    + std::to_string(fin.totalPrimitives) + ")";
                sendError(transport, requestId, frame.seq, result.error);
                return result;
            }
            if (!sendAck(transport, FrameType::Ack, requestId,
                         frame.seq)) {
                result.error = "capture client vanished at FIN";
                return result;
            }
            result.outcome = SessionOutcome::Completed;
            return result;
          }

          default:
            result.error = std::string("unexpected ")
                           + frameTypeName(frame.type)
                           + " inside an open session";
            sendError(transport, requestId, frame.seq, result.error);
            return result;
        }
    }
}

} // namespace syncron::tracenet
