/**
 * @file
 * The streaming trace sink — a sync::TraceSink that captures exactly
 * like TraceCapture (it owns one) while mirroring the growing record
 * stream to a collector over a CaptureClient session.
 *
 * Degradation contract: streaming is best-effort, capture is not. Every
 * record always lands in the owned TraceCapture, so when the collector
 * is unreachable, rejects the stream, or vanishes mid-run, the capture
 * side still holds the complete trace and the system writes it to a
 * local file instead — the run never loses its trace to a network
 * failure. finish() reports whether the stream completed so the caller
 * can decide where the bytes must go.
 */

#ifndef SYNCRON_TRACENET_STREAM_SINK_HH
#define SYNCRON_TRACENET_STREAM_SINK_HH

#include <cstddef>
#include <string>

#include "sync/trace_sink.hh"
#include "system/config.hh"
#include "trace/capture.hh"
#include "tracenet/marshal.hh"
#include "tracenet/session.hh"

namespace syncron::tracenet {

/** TraceCapture that also streams its records to a collector. */
class StreamingTraceSink final : public sync::TraceSink
{
  public:
    /** Records per FRAME; small enough to overlap capture and send. */
    static constexpr std::size_t kFlushRecords = 64;

    /**
     * Captures runs of a system built from @p cfg and streams them to
     * the collector at @p endpoint ("host:port" or "fd:N"). The
     * connection and HELLO happen lazily at the first record, so a
     * run with no sync ops never touches the network.
     *
     * @param streamName file name the collector stores the trace under
     */
    StreamingTraceSink(const SystemConfig &cfg, std::string endpoint,
                       std::string streamName, RetryPolicy policy);

    void record(CoreId core, const sync::SyncRequest &req, Tick issued,
                Tick completed) override;
    void recordDestroy(Addr var) override;

    /**
     * Flushes the tail batch, sends FIN, and closes the session.
     * @return true when the collector acked the complete stream;
     *         false means the caller must persist capture() locally
     */
    bool finish();

    /** Aborts the stream (CANCEL); the local capture stays intact. */
    void cancel();

    /** The underlying full capture (always complete). */
    trace::TraceCapture &capture() { return capture_; }
    const trace::TraceCapture &capture() const { return capture_; }

    bool streamingFailed() const { return failed_; }
    /** Failure reason once streamingFailed(). */
    const std::string &error() const { return error_; }

  private:
    /** Sends records [flushed_, records.size()) as one FRAME. */
    void flush();

    const SystemConfig &cfg_;
    trace::TraceCapture capture_;
    std::string streamName_;
    CaptureClient client_;
    BatchEncoder encoder_;
    std::size_t flushed_ = 0; ///< records already streamed
    bool started_ = false;    ///< HELLO exchanged
    bool failed_ = false;
    std::string error_;
};

} // namespace syncron::tracenet

#endif // SYNCRON_TRACENET_STREAM_SINK_HH
