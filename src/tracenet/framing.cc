#include "tracenet/framing.hh"

#include "common/log.hh"
#include "trace/varint.hh"

namespace syncron::tracenet {

using trace::appendVarint;

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::Hello: return "HELLO";
      case FrameType::Accept: return "ACCEPT";
      case FrameType::Frame: return "FRAME";
      case FrameType::Ack: return "ACK";
      case FrameType::Cancel: return "CANCEL";
      case FrameType::Fin: return "FIN";
      case FrameType::Error: return "ERROR";
    }
    return "?";
}

void
encodeFrame(std::string &out, FrameType type, std::uint64_t requestId,
            std::uint64_t seq, std::string_view payload)
{
    // Header first into a scratch so frameLen (= header-after-length +
    // payload) is known before anything lands in out.
    std::string header;
    appendVarint(header, static_cast<std::uint64_t>(type));
    appendVarint(header, requestId);
    appendVarint(header, seq);
    const std::uint64_t frameLen = header.size() + payload.size();
    SYNCRON_ASSERT(frameLen <= kMaxFrameBytes,
                   "oversized outgoing frame (" << frameLen
                                                << " bytes)");
    appendVarint(out, frameLen);
    out += header;
    out.append(payload.data(), payload.size());
}

void
FrameDecoder::feed(const char *data, std::size_t n)
{
    // Reclaim consumed prefix before growing; keeps the buffer bounded
    // by one partial frame plus whatever feed() just delivered.
    if (consumed_ > 0) {
        buf_.erase(0, consumed_);
        consumed_ = 0;
    }
    buf_.append(data, n);
}

bool
FrameDecoder::next(Frame &out)
{
    const auto *base =
        reinterpret_cast<const unsigned char *>(buf_.data());
    const unsigned char *begin = base + consumed_;
    const unsigned char *end = base + buf_.size();

    // Peek the length prefix without committing: it may be split
    // across feeds.
    std::uint64_t frameLen = 0;
    const unsigned char *p = begin;
    for (unsigned shift = 0;; shift += 7) {
        if (p == end)
            return false; // length varint incomplete
        if (shift >= 64)
            SYNCRON_FATAL("malformed trace-service frame: length "
                          "varint longer than 64 bits");
        const unsigned char byte = *p++;
        frameLen |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            break;
    }
    if (frameLen > kMaxFrameBytes)
        SYNCRON_FATAL("malformed trace-service frame: length "
                      << frameLen << " exceeds the " << kMaxFrameBytes
                      << "-byte cap");
    if (static_cast<std::uint64_t>(end - p) < frameLen)
        return false; // body incomplete

    trace::VarintCursor cur(p, p + frameLen, "trace-service frame");
    const std::uint64_t rawType = cur.get();
    if (rawType > static_cast<std::uint64_t>(FrameType::Error))
        SYNCRON_FATAL("malformed trace-service frame: unknown type "
                      << rawType);
    out.type = static_cast<FrameType>(rawType);
    out.requestId = cur.get();
    out.seq = cur.get();
    out.payload.assign(reinterpret_cast<const char *>(cur.position()),
                       cur.remaining());

    consumed_ = static_cast<std::size_t>(
        reinterpret_cast<const char *>(p + frameLen) - buf_.data());
    return true;
}

} // namespace syncron::tracenet
