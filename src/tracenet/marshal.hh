/**
 * @file
 * Payload marshalling for the streaming trace service — the middle of
 * the fnet-style stack: framing below carries opaque payloads, the
 * session state machine above deals in these typed messages.
 *
 * Batch payloads reuse the `SYNCTRC` record layout byte-for-byte
 * (zigzag issue deltas chained ACROSS frames through BatchEncoder /
 * BatchDecoder state), so a collector that appends decoded records and
 * re-serializes with TraceWriter reproduces exactly the file a local
 * --trace-out capture of the same run would have written — the
 * byte-identity guarantee the loopback tests pin.
 *
 * The primitive table travels as per-frame deltas: every entry that is
 * new or whose fields changed since the last flush (capture learns
 * barrier headcounts and semaphore resources lazily, so an entry can be
 * amended after it was first sent) is re-sent as (id, entry) and
 * upserted on the collector side — last writer wins, matching the
 * in-memory table the local capture would have ended with.
 */

#ifndef SYNCRON_TRACENET_MARSHAL_HH
#define SYNCRON_TRACENET_MARSHAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/format.hh"

namespace syncron::tracenet {

/** HELLO payload: what a capture session opens with. */
struct HelloMsg
{
    std::uint64_t protocolVersion = 0;
    std::uint64_t traceVersion = 0; ///< trace::kTraceVersion of sender
    std::uint32_t numUnits = 0;
    std::uint32_t clientCoresPerUnit = 0;
    std::string streamName; ///< collector's output file name
};

/** FIN payload: end-of-stream totals the collector cross-checks. */
struct FinMsg
{
    std::uint64_t totalRecords = 0;
    std::uint64_t totalPrimitives = 0;
};

std::string encodeHello(const HelloMsg &msg);
HelloMsg decodeHello(const std::string &payload);

std::string encodeFin(const FinMsg &msg);
FinMsg decodeFin(const std::string &payload);

/** ERROR payload is the bare message text. */
std::string encodeError(const std::string &message);

/**
 * Serializes capture batches: per FRAME, the primitive-table delta
 * versus the last flush, then the new records in container layout. One
 * encoder per session — the issue-tick delta chain and the
 * last-sent table snapshot live here.
 */
class BatchEncoder
{
  public:
    /**
     * Encodes one batch payload: the entries of @p table that are new
     * or changed since the previous call, and @p records (the records
     * captured since the previous call, in capture order).
     */
    std::string encode(const std::vector<trace::TracePrimitive> &table,
                       const trace::TraceRecord *records,
                       std::size_t numRecords);

  private:
    std::vector<trace::TracePrimitive> sentTable_;
    Tick prevIssued_ = 0;
};

/**
 * The collector-side inverse: applies table upserts and appends
 * records onto the session's accumulating Trace. fatal()s on malformed
 * payloads (truncation, out-of-range enums, dangling record refs).
 */
class BatchDecoder
{
  public:
    /** Decodes one batch payload into @p trace (machine shape must
     *  already be set from HELLO — record core ids are checked
     *  against it). */
    void decode(const std::string &payload, trace::Trace &trace);

  private:
    Tick prevIssued_ = 0;
};

} // namespace syncron::tracenet

#endif // SYNCRON_TRACENET_MARSHAL_HH
