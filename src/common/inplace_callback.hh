/**
 * @file
 * Fixed-capacity, allocation-free callable — the event-callback type of
 * the simulation kernel.
 *
 * The discrete-event kernel schedules tens of millions of callbacks per
 * simulated run; storing each one in a std::function costs a heap
 * allocation whenever the capture exceeds the library's tiny SSO buffer
 * (libstdc++: 16 bytes — smaller than every device callback in this
 * codebase). InplaceCallback instead embeds the callable in a
 * fixed-size inline buffer and rejects anything larger at compile time,
 * so scheduling never touches the allocator.
 *
 * Capabilities are intentionally minimal: move-only, void() signature,
 * invocable once or many times. Trivially-copyable callables (every
 * coroutine-resume and device-model lambda in src/) relocate with
 * memcpy; non-trivial callables are supported through a per-type manage
 * function, so the type stays general.
 */

#ifndef SYNCRON_COMMON_INPLACE_CALLBACK_HH
#define SYNCRON_COMMON_INPLACE_CALLBACK_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace syncron::common {

/** Move-only void() callable stored inline in @p Capacity bytes. */
template <std::size_t Capacity>
class InplaceCallback
{
  public:
    static constexpr std::size_t kCapacity = Capacity;
    static constexpr std::size_t kAlign = alignof(std::max_align_t);

    InplaceCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceCallback>
                  && std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InplaceCallback(F &&f) // NOLINT: implicit like std::function
    {
        using G = std::decay_t<F>;
        static_assert(sizeof(G) <= Capacity,
                      "callback capture too large for the inline "
                      "buffer; shrink the capture (capture pointers, "
                      "not values) or raise the kernel's callback "
                      "capacity");
        static_assert(alignof(G) <= kAlign,
                      "callback capture over-aligned for the inline "
                      "buffer");
        static_assert(std::is_nothrow_move_constructible_v<G>,
                      "callback captures must be nothrow-movable; the "
                      "kernel relocates events without rollback");
        ::new (static_cast<void *>(buf_)) G(std::forward<F>(f));
        invoke_ = [](void *p) { (*static_cast<G *>(p))(); };
        if constexpr (!std::is_trivially_copyable_v<G>
                      || !std::is_trivially_destructible_v<G>) {
            manage_ = [](void *dst, void *src) {
                G *s = static_cast<G *>(src);
                if (dst != nullptr)
                    ::new (dst) G(std::move(*s));
                s->~G();
            };
        }
    }

    InplaceCallback(InplaceCallback &&other) noexcept { moveFrom(other); }

    InplaceCallback &
    operator=(InplaceCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InplaceCallback(const InplaceCallback &) = delete;
    InplaceCallback &operator=(const InplaceCallback &) = delete;

    ~InplaceCallback() { reset(); }

    /** True when a callable is stored. */
    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    /** Invokes the stored callable. */
    void
    operator()()
    {
        invoke_(buf_);
    }

    /** Destroys the stored callable, leaving the object empty. */
    void
    reset() noexcept
    {
        if (manage_ != nullptr)
            manage_(nullptr, buf_);
        invoke_ = nullptr;
        manage_ = nullptr;
    }

  private:
    void
    moveFrom(InplaceCallback &other) noexcept
    {
        if (other.invoke_ == nullptr)
            return;
        if (other.manage_ != nullptr)
            other.manage_(buf_, other.buf_);
        else
            std::memcpy(buf_, other.buf_, Capacity);
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
    }

    alignas(kAlign) unsigned char buf_[Capacity];
    void (*invoke_)(void *) = nullptr;
    /** Relocate (dst != null) or destroy (dst == null); null when the
     *  callable is trivially copyable and destructible. */
    void (*manage_)(void *, void *) = nullptr;
};

} // namespace syncron::common

#endif // SYNCRON_COMMON_INPLACE_CALLBACK_HH
