#include "common/stats.hh"

namespace syncron {

void
SystemStats::forEach(
    const std::function<void(const std::string &, double)> &fn) const
{
    fn("instructions", static_cast<double>(instructions));
    fn("memOps", static_cast<double>(memOps));
    fn("syncOps", static_cast<double>(syncOps));
    fn("l1Hits", static_cast<double>(l1Hits));
    fn("l1Misses", static_cast<double>(l1Misses));
    fn("dramReads", static_cast<double>(dramReads));
    fn("dramWrites", static_cast<double>(dramWrites));
    fn("dramRowHits", static_cast<double>(dramRowHits));
    fn("dramRowMisses", static_cast<double>(dramRowMisses));
    fn("xbarMessages", static_cast<double>(xbarMessages));
    fn("xbarBitHops", static_cast<double>(xbarBitHops));
    fn("linkMessages", static_cast<double>(linkMessages));
    fn("linkBits", static_cast<double>(linkBits));
    fn("bytesInsideUnits", static_cast<double>(bytesInsideUnits));
    fn("bytesAcrossUnits", static_cast<double>(bytesAcrossUnits));
    fn("syncLocalMsgs", static_cast<double>(syncLocalMsgs));
    fn("syncGlobalMsgs", static_cast<double>(syncGlobalMsgs));
    fn("syncOverflowMsgs", static_cast<double>(syncOverflowMsgs));
    fn("syncMemAccesses", static_cast<double>(syncMemAccesses));
    fn("stAllocs", static_cast<double>(stAllocs));
    fn("stOverflowEvents", static_cast<double>(stOverflowEvents));
    fn("stRequests", static_cast<double>(stRequests));
    fn("stMaxOccupied", static_cast<double>(stMaxOccupied));
    fn("stOccupancyIntegral", stOccupancyIntegral);
    fn("stOccupancyTime", static_cast<double>(stOccupancyTime));
}

void
SystemStats::reset()
{
    *this = SystemStats{};
}

SystemStats &
SystemStats::operator+=(const SystemStats &other)
{
    instructions += other.instructions;
    memOps += other.memOps;
    syncOps += other.syncOps;
    l1Hits += other.l1Hits;
    l1Misses += other.l1Misses;
    dramReads += other.dramReads;
    dramWrites += other.dramWrites;
    dramRowHits += other.dramRowHits;
    dramRowMisses += other.dramRowMisses;
    xbarMessages += other.xbarMessages;
    xbarBitHops += other.xbarBitHops;
    linkMessages += other.linkMessages;
    linkBits += other.linkBits;
    bytesInsideUnits += other.bytesInsideUnits;
    bytesAcrossUnits += other.bytesAcrossUnits;
    syncLocalMsgs += other.syncLocalMsgs;
    syncGlobalMsgs += other.syncGlobalMsgs;
    syncOverflowMsgs += other.syncOverflowMsgs;
    syncMemAccesses += other.syncMemAccesses;
    stAllocs += other.stAllocs;
    stOverflowEvents += other.stOverflowEvents;
    stRequests += other.stRequests;
    if (other.stMaxOccupied > stMaxOccupied)
        stMaxOccupied = other.stMaxOccupied;
    stOccupancyIntegral += other.stOccupancyIntegral;
    stOccupancyTime += other.stOccupancyTime;
    return *this;
}

double
SystemStats::avgStOccupancy() const
{
    if (stOccupancyTime == 0)
        return 0.0;
    return stOccupancyIntegral / static_cast<double>(stOccupancyTime);
}

} // namespace syncron
