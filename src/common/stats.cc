#include "common/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/log.hh"

namespace syncron {

void
SyncOpLatency::record(Tick latency)
{
    if (count == 0 || latency < minTicks)
        minTicks = latency;
    if (latency > maxTicks)
        maxTicks = latency;
    ++count;
    totalTicks += static_cast<std::uint64_t>(latency);
    const unsigned bucket =
        latency <= 0
            ? 0u
            : std::bit_width(static_cast<std::uint64_t>(latency));
    ++hist[std::min(bucket, kSyncLatencyBuckets - 1)];
}

double
SyncOpLatency::avgTicks() const
{
    if (count == 0)
        return 0.0;
    return static_cast<double>(totalTicks) / static_cast<double>(count);
}

double
SyncOpLatency::percentileTicks(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank in (0, count]: the q-quantile is the value whose cumulative
    // count first reaches q * count.
    const double target =
        std::max(q * static_cast<double>(count), 1e-12);
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < kSyncLatencyBuckets; ++b) {
        if (hist[b] == 0)
            continue;
        if (static_cast<double>(cum + hist[b]) >= target) {
            double value = 0.0;
            if (b > 0) {
                // Bucket b covers [2^(b-1), 2^b); place the rank
                // geometrically within it.
                const double frac = (target - static_cast<double>(cum))
                                    / static_cast<double>(hist[b]);
                value = std::ldexp(1.0, static_cast<int>(b) - 1)
                        * std::exp2(frac);
            }
            return std::clamp(value, static_cast<double>(minTicks),
                              static_cast<double>(maxTicks));
        }
        cum += hist[b];
    }
    return static_cast<double>(maxTicks);
}

SyncOpLatency &
SyncOpLatency::operator+=(const SyncOpLatency &other)
{
    if (other.count != 0) {
        if (count == 0 || other.minTicks < minTicks)
            minTicks = other.minTicks;
        maxTicks = std::max(maxTicks, other.maxTicks);
    }
    count += other.count;
    totalTicks += other.totalTicks;
    for (unsigned b = 0; b < kSyncLatencyBuckets; ++b)
        hist[b] += other.hist[b];
    return *this;
}

void
SystemStats::recordSyncLatency(unsigned opKindIndex, Tick latency)
{
    SYNCRON_ASSERT(opKindIndex < kNumSyncOpKinds,
                   "sync latency for unknown op kind " << opKindIndex);
    syncLatency[opKindIndex].record(latency);
}

double
SystemStats::latencyPercentile(unsigned opKindIndex, double q) const
{
    SYNCRON_ASSERT(opKindIndex < kNumSyncOpKinds,
                   "latency percentile for unknown op kind "
                       << opKindIndex);
    return syncLatency[opKindIndex].percentileTicks(q);
}

void
SystemStats::forEach(
    const std::function<void(const std::string &, double)> &fn) const
{
    fn("instructions", static_cast<double>(instructions));
    fn("memOps", static_cast<double>(memOps));
    fn("syncOps", static_cast<double>(syncOps));
    fn("l1Hits", static_cast<double>(l1Hits));
    fn("l1Misses", static_cast<double>(l1Misses));
    fn("dramReads", static_cast<double>(dramReads));
    fn("dramWrites", static_cast<double>(dramWrites));
    fn("dramRowHits", static_cast<double>(dramRowHits));
    fn("dramRowMisses", static_cast<double>(dramRowMisses));
    fn("xbarMessages", static_cast<double>(xbarMessages));
    fn("xbarBitHops", static_cast<double>(xbarBitHops));
    fn("xbarFlits", static_cast<double>(xbarFlits));
    fn("linkMessages", static_cast<double>(linkMessages));
    fn("linkBits", static_cast<double>(linkBits));
    fn("linkFlits", static_cast<double>(linkFlits));
    fn("bytesInsideUnits", static_cast<double>(bytesInsideUnits));
    fn("bytesAcrossUnits", static_cast<double>(bytesAcrossUnits));
    fn("syncLocalMsgs", static_cast<double>(syncLocalMsgs));
    fn("syncGlobalMsgs", static_cast<double>(syncGlobalMsgs));
    fn("syncOverflowMsgs", static_cast<double>(syncOverflowMsgs));
    fn("syncMemAccesses", static_cast<double>(syncMemAccesses));
    fn("batchedOps", static_cast<double>(batchedOps));
    fn("messagesSaved", static_cast<double>(messagesSaved));
    fn("pmWrites", static_cast<double>(pmWrites));
    fn("pmBitsWritten", static_cast<double>(pmBitsWritten));
    fn("pmFlushes", static_cast<double>(pmFlushes));
    fn("stAllocs", static_cast<double>(stAllocs));
    fn("stOverflowEvents", static_cast<double>(stOverflowEvents));
    fn("stRequests", static_cast<double>(stRequests));
    fn("stMaxOccupied", static_cast<double>(stMaxOccupied));
    fn("stOccupancyIntegral", static_cast<double>(stOccupancyIntegral));
    fn("stOccupancyTime", static_cast<double>(stOccupancyTime));
    for (unsigned k = 0; k < kNumSyncOpKinds; ++k) {
        const SyncOpLatency &lat = syncLatency[k];
        if (lat.count == 0)
            continue;
        const std::string prefix = "syncLat." + std::to_string(k);
        fn(prefix + ".count", static_cast<double>(lat.count));
        fn(prefix + ".avgTicks", lat.avgTicks());
        fn(prefix + ".maxTicks", static_cast<double>(lat.maxTicks));
    }
}

void
SystemStats::reset()
{
    *this = SystemStats{};
}

SystemStats &
SystemStats::operator+=(const SystemStats &other)
{
    instructions += other.instructions;
    memOps += other.memOps;
    syncOps += other.syncOps;
    l1Hits += other.l1Hits;
    l1Misses += other.l1Misses;
    dramReads += other.dramReads;
    dramWrites += other.dramWrites;
    dramRowHits += other.dramRowHits;
    dramRowMisses += other.dramRowMisses;
    xbarMessages += other.xbarMessages;
    xbarBitHops += other.xbarBitHops;
    xbarFlits += other.xbarFlits;
    linkMessages += other.linkMessages;
    linkBits += other.linkBits;
    linkFlits += other.linkFlits;
    bytesInsideUnits += other.bytesInsideUnits;
    bytesAcrossUnits += other.bytesAcrossUnits;
    syncLocalMsgs += other.syncLocalMsgs;
    syncGlobalMsgs += other.syncGlobalMsgs;
    syncOverflowMsgs += other.syncOverflowMsgs;
    syncMemAccesses += other.syncMemAccesses;
    batchedOps += other.batchedOps;
    messagesSaved += other.messagesSaved;
    pmWrites += other.pmWrites;
    pmBitsWritten += other.pmBitsWritten;
    pmFlushes += other.pmFlushes;
    stAllocs += other.stAllocs;
    stOverflowEvents += other.stOverflowEvents;
    stRequests += other.stRequests;
    for (unsigned k = 0; k < kNumSyncOpKinds; ++k)
        syncLatency[k] += other.syncLatency[k];
    if (other.stMaxOccupied > stMaxOccupied)
        stMaxOccupied = other.stMaxOccupied;
    stOccupancyIntegral += other.stOccupancyIntegral;
    stOccupancyTime += other.stOccupancyTime;
    return *this;
}

double
SystemStats::avgStOccupancy() const
{
    if (stOccupancyTime == 0)
        return 0.0;
    return static_cast<double>(stOccupancyIntegral)
           / static_cast<double>(stOccupancyTime);
}

} // namespace syncron
