/**
 * @file
 * Unit conversions between wall time, clock cycles, and simulation ticks.
 * Ticks are picoseconds (common/types.hh), so all conversions are exact
 * for the frequencies used in the paper's configuration.
 */

#ifndef SYNCRON_COMMON_UNITS_HH
#define SYNCRON_COMMON_UNITS_HH

#include <cstdint>

#include "common/types.hh"

namespace syncron {

/** Ticks per nanosecond. */
constexpr Tick kTicksPerNs = 1000;

/** Ticks per microsecond. */
constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;

/** Converts nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs));
}

/** Converts ticks to (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/** Converts ticks to (fractional) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-12;
}

/**
 * A fixed-frequency clock domain that converts between cycles and ticks.
 * All devices in the simulated system (cores, SEs, networks) express their
 * latencies in their own cycles and use a Clock to talk to the global
 * picosecond timebase.
 */
class Clock
{
  public:
    /** Creates a clock running at @p mhz megahertz. */
    constexpr explicit Clock(std::uint64_t mhz)
        : periodTicks_(1000000 / mhz)
    {}

    /** Tick length of one cycle of this clock. */
    constexpr Tick period() const { return periodTicks_; }

    /** Converts a cycle count of this clock into ticks. */
    constexpr Tick cycles(std::uint64_t n) const { return n * periodTicks_; }

    /** Rounds @p t up to the next edge of this clock. */
    constexpr Tick
    nextEdge(Tick t) const
    {
        Tick rem = t % periodTicks_;
        return rem == 0 ? t : t + (periodTicks_ - rem);
    }

  private:
    Tick periodTicks_;
};

/** NDP core clock: 16 in-order cores @2.5 GHz per unit (Table 5). */
constexpr Clock kCoreClock{2500};

/** Synchronization Engine SPU clock: 1 GHz (Table 5). */
constexpr Clock kSpuClock{1000};

} // namespace syncron

#endif // SYNCRON_COMMON_UNITS_HH
