/**
 * @file
 * Event-sourced statistics for the simulated NDP system.
 *
 * Every device (cache, DRAM, crossbar, link, SE, server core) increments
 * plain counters here as events happen. Derived metrics — energy
 * (Fig. 14), data movement (Fig. 15), ST occupancy (Table 7) — are
 * computed from these counts by system/energy.hh and the harness, so the
 * accounting matches the paper's methodology of counting events in
 * ZSim-Ramulator and applying per-event costs afterwards.
 */

#ifndef SYNCRON_COMMON_STATS_HH
#define SYNCRON_COMMON_STATS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hh"

namespace syncron {

/** Number of API-level synchronization operation kinds (sync::OpKind). */
inline constexpr unsigned kNumSyncOpKinds = 9;

/** Log2 latency-histogram buckets (bucket b: 2^(b-1) <= ticks < 2^b). */
inline constexpr unsigned kSyncLatencyBuckets = 32;

/**
 * Latency accounting for one API-level synchronization operation kind,
 * recorded at the backend boundary: issue timestamp when the request is
 * handed to the SyncBackend, completion timestamp when the core observes
 * the gate open. Every scheme feeds the same counters, so per-primitive
 * latency distributions are comparable across backends for free.
 */
struct SyncOpLatency
{
    std::uint64_t count = 0;
    std::uint64_t totalTicks = 0;
    Tick minTicks = 0;
    Tick maxTicks = 0;
    std::array<std::uint64_t, kSyncLatencyBuckets> hist{};

    /** Records one completed operation of @p latency ticks. */
    void record(Tick latency);

    /** Average latency in ticks (0 when nothing was recorded). */
    double avgTicks() const;

    /**
     * Latency quantile @p q in [0, 1] (0.99 = p99), in ticks.
     * Log-interpolated inside the hit log2 bucket — bucket b covers
     * [2^(b-1), 2^b), so the estimate is 2^(b-1+frac) where frac is the
     * rank's position within the bucket — and clamped to the exact
     * [minTicks, maxTicks] observed. Returns 0 when nothing was
     * recorded.
     */
    double percentileTicks(double q) const;

    /** Merges another kind-bucket into this one. */
    SyncOpLatency &operator+=(const SyncOpLatency &other);
};

/**
 * All event counters for one simulated system instance.
 *
 * Counter semantics (units in the name where ambiguous):
 *  - cache: L1 data accesses by NDP cores and server cores.
 *  - dram: accesses to the memory arrays of any NDP unit.
 *  - xbar: messages through intra-unit crossbars; bitHops = bits * hops.
 *  - link: transfers over the serial inter-unit links.
 *  - bytesInside/AcrossUnits: data-movement accounting for Fig. 15.
 *  - sync*: synchronization-protocol message counts.
 *  - st*: Synchronization Table allocation/overflow tracking (Table 7,
 *    Fig. 22/23). Occupancy is tracked as a time integral: occupancy
 *    integral / total time = average occupied entries.
 */
struct SystemStats
{
    // -- Core activity
    std::uint64_t instructions = 0;   ///< compute instructions retired
    std::uint64_t memOps = 0;         ///< loads + stores issued by cores
    std::uint64_t syncOps = 0;        ///< API-level sync operations

    // -- Cache
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;

    // -- DRAM
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;

    // -- Intra-unit network (buffered crossbar)
    std::uint64_t xbarMessages = 0;
    std::uint64_t xbarBitHops = 0;
    std::uint64_t xbarFlits = 0; ///< datapath-width chunks transferred

    // -- Inter-unit serial links
    std::uint64_t linkMessages = 0;
    std::uint64_t linkBits = 0;
    std::uint64_t linkFlits = 0; ///< 128-bit serialization chunks

    // -- Data movement (Fig. 15)
    std::uint64_t bytesInsideUnits = 0;
    std::uint64_t bytesAcrossUnits = 0;

    // -- Synchronization protocol
    std::uint64_t syncLocalMsgs = 0;    ///< core <-> local SE / server
    std::uint64_t syncGlobalMsgs = 0;   ///< SE <-> Master SE (cross-unit)
    std::uint64_t syncOverflowMsgs = 0; ///< overflow-opcode messages
    std::uint64_t syncMemAccesses = 0;  ///< syncronVar DRAM accesses
    std::uint64_t batchedOps = 0;       ///< ops carried in coalesced msgs
    std::uint64_t messagesSaved = 0;    ///< request msgs coalescing avoided

    // -- Durability (modeled PM write path for SE state)
    std::uint64_t pmWrites = 0;      ///< persisted writes issued
    std::uint64_t pmBitsWritten = 0; ///< bits reaching the PM domain
    std::uint64_t pmFlushes = 0;     ///< epoch-batched WAL flushes

    /// Per-OpKind latency distributions, indexed by sync::OpKind.
    std::array<SyncOpLatency, kNumSyncOpKinds> syncLatency{};

    /** Records one completed sync op at the backend boundary. */
    void recordSyncLatency(unsigned opKindIndex, Tick latency);

    /**
     * Latency quantile of one op kind (sync::OpKind index), in ticks;
     * see SyncOpLatency::percentileTicks for the interpolation.
     */
    double latencyPercentile(unsigned opKindIndex, double q) const;

    // -- Synchronization Table
    std::uint64_t stAllocs = 0;          ///< entries ever reserved
    std::uint64_t stOverflowEvents = 0;  ///< requests serviced via memory
    std::uint64_t stRequests = 0;        ///< requests that consulted an ST
    std::uint64_t stMaxOccupied = 0;     ///< max entries occupied (any ST)
    /// sum(occupied * dt) over time. Integer (entries are integers,
    /// dt is ticks) so merging per-shard stat blocks is exact — sharded
    /// runs must reproduce single-threaded stats bit-identically.
    std::uint64_t stOccupancyIntegral = 0;
    Tick stOccupancyTime = 0;            ///< total observed time

    /** Visits every scalar counter as (name, value-as-double). */
    void forEach(
        const std::function<void(const std::string &, double)> &fn) const;

    /** Resets all counters to zero. */
    void reset();

    /** Adds another stat set into this one (for aggregation). */
    SystemStats &operator+=(const SystemStats &other);

    /** Average ST occupancy in entries over the observed interval. */
    double avgStOccupancy() const;
};

} // namespace syncron

#endif // SYNCRON_COMMON_STATS_HH
