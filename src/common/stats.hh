/**
 * @file
 * Event-sourced statistics for the simulated NDP system.
 *
 * Every device (cache, DRAM, crossbar, link, SE, server core) increments
 * plain counters here as events happen. Derived metrics — energy
 * (Fig. 14), data movement (Fig. 15), ST occupancy (Table 7) — are
 * computed from these counts by system/energy.hh and the harness, so the
 * accounting matches the paper's methodology of counting events in
 * ZSim-Ramulator and applying per-event costs afterwards.
 */

#ifndef SYNCRON_COMMON_STATS_HH
#define SYNCRON_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hh"

namespace syncron {

/**
 * All event counters for one simulated system instance.
 *
 * Counter semantics (units in the name where ambiguous):
 *  - cache: L1 data accesses by NDP cores and server cores.
 *  - dram: accesses to the memory arrays of any NDP unit.
 *  - xbar: messages through intra-unit crossbars; bitHops = bits * hops.
 *  - link: transfers over the serial inter-unit links.
 *  - bytesInside/AcrossUnits: data-movement accounting for Fig. 15.
 *  - sync*: synchronization-protocol message counts.
 *  - st*: Synchronization Table allocation/overflow tracking (Table 7,
 *    Fig. 22/23). Occupancy is tracked as a time integral: occupancy
 *    integral / total time = average occupied entries.
 */
struct SystemStats
{
    // -- Core activity
    std::uint64_t instructions = 0;   ///< compute instructions retired
    std::uint64_t memOps = 0;         ///< loads + stores issued by cores
    std::uint64_t syncOps = 0;        ///< API-level sync operations

    // -- Cache
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;

    // -- DRAM
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;

    // -- Intra-unit network (buffered crossbar)
    std::uint64_t xbarMessages = 0;
    std::uint64_t xbarBitHops = 0;

    // -- Inter-unit serial links
    std::uint64_t linkMessages = 0;
    std::uint64_t linkBits = 0;

    // -- Data movement (Fig. 15)
    std::uint64_t bytesInsideUnits = 0;
    std::uint64_t bytesAcrossUnits = 0;

    // -- Synchronization protocol
    std::uint64_t syncLocalMsgs = 0;    ///< core <-> local SE / server
    std::uint64_t syncGlobalMsgs = 0;   ///< SE <-> Master SE (cross-unit)
    std::uint64_t syncOverflowMsgs = 0; ///< overflow-opcode messages
    std::uint64_t syncMemAccesses = 0;  ///< syncronVar DRAM accesses

    // -- Synchronization Table
    std::uint64_t stAllocs = 0;          ///< entries ever reserved
    std::uint64_t stOverflowEvents = 0;  ///< requests serviced via memory
    std::uint64_t stRequests = 0;        ///< requests that consulted an ST
    std::uint64_t stMaxOccupied = 0;     ///< max entries occupied (any ST)
    double stOccupancyIntegral = 0.0;    ///< sum(occupied * dt) over time
    Tick stOccupancyTime = 0;            ///< total observed time

    /** Visits every scalar counter as (name, value-as-double). */
    void forEach(
        const std::function<void(const std::string &, double)> &fn) const;

    /** Resets all counters to zero. */
    void reset();

    /** Adds another stat set into this one (for aggregation). */
    SystemStats &operator+=(const SystemStats &other);

    /** Average ST occupancy in entries over the observed interval. */
    double avgStOccupancy() const;
};

} // namespace syncron

#endif // SYNCRON_COMMON_STATS_HH
