/**
 * @file
 * Error-reporting and status-message helpers in the spirit of gem5's
 * logging.hh: panic() for internal invariant violations, fatal() for user
 * configuration errors, warn()/inform() for status output.
 */

#ifndef SYNCRON_COMMON_LOG_HH
#define SYNCRON_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace syncron {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Sets the global status-message verbosity. */
void setLogLevel(LogLevel level);

/** Returns the global status-message verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Builds a message string from a stream expression. */
class MsgBuilder
{
  public:
    template <typename T>
    MsgBuilder &
    operator<<(const T &v)
    {
        os_ << v;
        return *this;
    }

    std::string str() const { return os_.str(); }

  private:
    std::ostringstream os_;
};

} // namespace detail
} // namespace syncron

/**
 * Aborts the simulation: something happened that should never happen
 * regardless of user input, i.e. a bug in the simulator itself.
 */
#define SYNCRON_PANIC(msg_expr)                                             \
    do {                                                                    \
        ::syncron::detail::MsgBuilder mb_;                                  \
        mb_ << msg_expr;                                                    \
        ::syncron::detail::panicImpl(__FILE__, __LINE__, mb_.str());        \
    } while (0)

/**
 * Terminates the simulation due to a user-caused condition (bad
 * configuration, invalid arguments) rather than a simulator bug.
 */
#define SYNCRON_FATAL(msg_expr)                                             \
    do {                                                                    \
        ::syncron::detail::MsgBuilder mb_;                                  \
        mb_ << msg_expr;                                                    \
        ::syncron::detail::fatalImpl(__FILE__, __LINE__, mb_.str());        \
    } while (0)

/** Non-fatal warning about questionable behaviour. */
#define SYNCRON_WARN(msg_expr)                                              \
    do {                                                                    \
        ::syncron::detail::MsgBuilder mb_;                                  \
        mb_ << msg_expr;                                                    \
        ::syncron::detail::warnImpl(mb_.str());                             \
    } while (0)

/** Informative status message (suppressed when LogLevel::Quiet). */
#define SYNCRON_INFORM(msg_expr)                                            \
    do {                                                                    \
        ::syncron::detail::MsgBuilder mb_;                                  \
        mb_ << msg_expr;                                                    \
        ::syncron::detail::informImpl(mb_.str());                           \
    } while (0)

/** Internal-consistency check that panics with a message on failure. */
#define SYNCRON_ASSERT(cond, msg_expr)                                      \
    do {                                                                    \
        if (!(cond)) {                                                      \
            SYNCRON_PANIC("assertion failed: " #cond ": " << msg_expr);     \
        }                                                                   \
    } while (0)

#endif // SYNCRON_COMMON_LOG_HH
