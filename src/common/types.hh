/**
 * @file
 * Fundamental scalar types shared by every module of the SynCron
 * reproduction: simulation ticks, physical addresses, and the identifiers
 * for NDP cores, NDP units, and Synchronization Engines.
 */

#ifndef SYNCRON_COMMON_TYPES_HH
#define SYNCRON_COMMON_TYPES_HH

#include <cstdint>

namespace syncron {

/**
 * Simulation time in picoseconds. One tick = 1 ps, which expresses every
 * clock domain in the evaluated system exactly: 2.5 GHz NDP cores
 * (400 ps/cycle), the 1 GHz SPU inside each SE (1000 ps/cycle), and DRAM
 * timing parameters given in nanoseconds.
 */
using Tick = std::uint64_t;

/** The maximum representable tick, used as "never". */
constexpr Tick kTickNever = ~Tick{0};

/**
 * Physical byte address in the single shared address space of the NDP
 * system. The upper bits select the NDP unit that owns the address
 * (see mem/allocator.hh).
 */
using Addr = std::uint64_t;

/** System-wide core identifier (unique across all NDP units). */
using CoreId = std::uint32_t;

/** NDP unit identifier; also the global ID of the unit's SE. */
using UnitId = std::uint32_t;

/** An invalid/unassigned core id. */
constexpr CoreId kInvalidCore = ~CoreId{0};

/** An invalid/unassigned unit id. */
constexpr UnitId kInvalidUnit = ~UnitId{0};

/** Cache-line size used throughout the system (Table 5: 64 B lines). */
constexpr std::uint32_t kCacheLineBytes = 64;

/** Returns the cache-line-aligned base of @p addr. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~Addr{kCacheLineBytes - 1};
}

} // namespace syncron

#endif // SYNCRON_COMMON_TYPES_HH
