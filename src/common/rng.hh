/**
 * @file
 * Deterministic pseudo-random number generation for workloads and
 * generators. The simulation must be reproducible bit-for-bit, so every
 * random decision flows through an explicitly seeded Xorshift64* stream.
 */

#ifndef SYNCRON_COMMON_RNG_HH
#define SYNCRON_COMMON_RNG_HH

#include <cstdint>

namespace syncron {

/**
 * Xorshift64* generator. Small, fast, and good enough for workload key
 * selection and synthetic graph generation; not cryptographic.
 */
class Rng
{
  public:
    /** Seeds the stream; a zero seed is remapped to a fixed constant. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed ? seed : 0x9e3779b97f4a7c15ULL)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state_;
};

} // namespace syncron

#endif // SYNCRON_COMMON_RNG_HH
