/**
 * @file
 * Small bit-manipulation helpers used by the Synchronization Table waiting
 * lists (hardware bit queues), the cache indexing logic, and the MESI
 * directory sharer masks.
 */

#ifndef SYNCRON_COMMON_BITS_HH
#define SYNCRON_COMMON_BITS_HH

#include <bit>
#include <cstdint>

namespace syncron {

/** Returns true iff bit @p pos of @p v is set. */
constexpr bool
bitSet(std::uint64_t v, unsigned pos)
{
    return (v >> pos) & 1ULL;
}

/** Returns @p v with bit @p pos set. */
constexpr std::uint64_t
withBit(std::uint64_t v, unsigned pos)
{
    return v | (1ULL << pos);
}

/** Returns @p v with bit @p pos cleared. */
constexpr std::uint64_t
withoutBit(std::uint64_t v, unsigned pos)
{
    return v & ~(1ULL << pos);
}

/** Number of set bits. */
constexpr unsigned
popCount(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/**
 * Index of the lowest set bit, or 64 when @p v == 0. The hardware waiting
 * lists of SynCron grant in lowest-index-first order (paper Section 3.2
 * grants to "NDP Core 0 first, and NDP Core 1 next").
 */
constexpr unsigned
lowestSetBit(std::uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Extracts bits [hi:lo] (inclusive) of @p v. */
constexpr std::uint64_t
bitsOf(std::uint64_t v, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const std::uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    return (v >> lo) & mask;
}

} // namespace syncron

#endif // SYNCRON_COMMON_BITS_HH
