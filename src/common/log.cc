#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace syncron {

namespace {
LogLevel g_level = LogLevel::Normal;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing (rather than abort()) lets the test suite verify panic
    // conditions; uncaught, it still terminates the process.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (g_level != LogLevel::Quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_level == LogLevel::Verbose)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace syncron
