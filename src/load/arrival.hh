/**
 * @file
 * Arrival-process specifications and precomputed per-core arrival
 * schedules for open-loop load generation.
 *
 * Every workload the repo had before this subsystem is closed-loop:
 * cores issue the next operation as soon as the previous one completes,
 * so the offered load is whatever the backend sustains and tail latency
 * under overload is unobservable. An open-loop run instead fixes the
 * arrival process up front: a LoadSpec (kind + rate + seed) is expanded
 * once into a run-immutable ArrivalSchedule — one sorted (tick, lock)
 * table per client core — and the OpenLoopWorkload issues operations at
 * those ticks regardless of completion.
 *
 * The expansion is a pure function of (spec, core count): every random
 * decision flows through a per-core seeded syncron::Rng, so schedules
 * are bit-identical across hosts, job counts, and --sim-shards values
 * (the PR 8 sharded-determinism discipline: shared state is immutable
 * before the run starts; per-core state is only touched by that core's
 * coroutines).
 */

#ifndef SYNCRON_LOAD_ARRIVAL_HH
#define SYNCRON_LOAD_ARRIVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace syncron::load {

/** Arrival processes an open-loop run can offer. */
enum class ArrivalKind
{
    Fixed,   ///< deterministic inter-arrival gap (rate exactly)
    Poisson, ///< exponential inter-arrival gaps (the M/D/1 assumption)
    Bursty,  ///< on/off: back-to-back bursts separated by long idles
    Diurnal, ///< Poisson with a sinusoidally modulated rate (day/night)
};

/** Printable name ("fixed", "poisson", ...). */
const char *arrivalKindName(ArrivalKind kind);

/** What to do with an arrival whose scheduled tick passed while every
 *  in-flight window slot was busy. */
enum class OverloadPolicy
{
    Queue, ///< issue late, account the queueing delay
    Drop,  ///< shed it, count a drop
};

/** Printable name ("queue" / "drop"). */
const char *overloadPolicyName(OverloadPolicy policy);

/**
 * Seeded description of one open-loop load point. Parsed from the
 * harness's --load= option (see fromString) or built directly by
 * benches sweeping offered rates.
 */
struct LoadSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /// Mean offered arrivals per core per simulated microsecond.
    double ratePerUs = 1.0;
    /// Arrivals scheduled per core.
    unsigned opsPerCore = 64;
    /// Bounded in-flight window: operations a core may have outstanding.
    unsigned window = 4;
    OverloadPolicy policy = OverloadPolicy::Queue;
    /// Fine-grained locks the arrivals target (chosen per-arrival by
    /// the seeded stream, homed round-robin across units).
    unsigned numLocks = 64;
    /// Critical-section hold time between acquire and release, ticks.
    Tick holdTicks = 0;
    std::uint64_t seed = 1;

    // -- Bursty parameters
    unsigned burstLen = 8;       ///< arrivals per on-burst
    double burstGapFactor = 50.0; ///< idle gap = factor * mean gap

    // -- Diurnal parameters
    unsigned diurnalPhases = 2;   ///< full sine periods over the run
    double diurnalAmplitude = 0.75; ///< rate swing fraction, in [0, 1)

    /** Maximum accepted in-flight window. */
    static constexpr unsigned kMaxWindow = 64;

    /**
     * Parses "<kind>[:k=v[,k=v...]]" — e.g.
     * "poisson:rate=2.5,ops=64,window=4,locks=32,hold=500,policy=drop,
     * seed=3". Keys: rate, ops, window, locks, hold (ns), policy, seed,
     * burst, gapx, phases, amp. Returns false and sets @p error on a
     * malformed spec; @p out is untouched on failure.
     */
    static bool fromString(const std::string &text, LoadSpec &out,
                           std::string &error);

    /** Canonical spec string (parseable by fromString). */
    std::string toString() const;

    /** Mean inter-arrival gap in ticks implied by ratePerUs. */
    double meanGapTicks() const;
};

/** One scheduled operation: acquire+release of the lock at lockIdx. */
struct Arrival
{
    Tick tick = 0;
    std::uint32_t lockIdx = 0;

    bool
    operator==(const Arrival &other) const
    {
        return tick == other.tick && lockIdx == other.lockIdx;
    }
};

/** Run-immutable expansion of a LoadSpec over a machine's client cores. */
struct ArrivalSchedule
{
    /// perCore[i] is core i's schedule, sorted by tick ascending.
    std::vector<std::vector<Arrival>> perCore;

    /** Total arrivals over all cores (the offered operation count). */
    std::uint64_t totalArrivals() const;

    /** Latest scheduled tick across all cores (0 when empty). */
    Tick horizon() const;
};

/**
 * Expands @p spec into per-core schedules for @p numCores cores. Pure:
 * same (spec, numCores) always yields the same tables.
 */
ArrivalSchedule buildArrivalSchedule(const LoadSpec &spec,
                                     unsigned numCores);

} // namespace syncron::load

#endif // SYNCRON_LOAD_ARRIVAL_HH
