/**
 * @file
 * Open-loop sync-op issue engine: drives a precomputed ArrivalSchedule
 * through the asynchronous sync API with a bounded per-core in-flight
 * window.
 *
 * Each client core runs `window` worker coroutines that pull arrivals
 * from the core's schedule cursor in order. A free worker sleeps until
 * its arrival's tick, then issues acquire -> (hold) -> release through
 * the submit*() path. When a worker pulls an arrival whose tick already
 * passed, every window slot was busy at the scheduled instant — the
 * open-loop backpressure signal — and the spec's OverloadPolicy decides:
 * Queue issues it late and accounts the delay, Drop sheds it.
 *
 * One hardware constraint shapes the issue path: an SE waitlist is a
 * bitmask with one bit per core, so a core may have at most one
 * acquire in flight per lock (a second one would collapse into the
 * same waitlist bit and its grant would be lost). Workers of one core
 * therefore serialize same-lock arrivals through a per-core in-flight
 * set: under Queue the later worker parks on a gate and ownership is
 * handed off FIFO at release; under Drop a busy lock at the scheduled
 * tick sheds the arrival like any other overload.
 *
 * Sharded-determinism discipline (PR 8): the schedule is immutable for
 * the whole run, and each core's cursor/counters are touched only by
 * that core's coroutines, which are all homed on the core's shard — so
 * runs are bit-identical for any --sim-shards value.
 */

#ifndef SYNCRON_LOAD_OPENLOOP_HH
#define SYNCRON_LOAD_OPENLOOP_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "load/arrival.hh"
#include "sim/process.hh"
#include "sync/primitives.hh"

namespace syncron {
class NdpSystem;
namespace core {
class Core;
} // namespace core
} // namespace syncron

namespace syncron::load {

/** Issue/drop/queue accounting for one core (or an aggregate). */
struct LoadCounters
{
    std::uint64_t issued = 0;  ///< arrivals that became sync ops
    std::uint64_t dropped = 0; ///< arrivals shed (Drop policy)
    std::uint64_t queued = 0;  ///< arrivals issued late (Queue policy)
    /// Total lateness of queued arrivals, ticks (issue - scheduled).
    std::uint64_t queueDelayTicks = 0;

    LoadCounters &
    operator+=(const LoadCounters &other)
    {
        issued += other.issued;
        dropped += other.dropped;
        queued += other.queued;
        queueDelayTicks += other.queueDelayTicks;
        return *this;
    }
};

/**
 * The open-loop workload on an externally built system. The spec and
 * schedule must outlive the run; the schedule must cover exactly the
 * system's client cores.
 *
 *   NdpSystem sys(cfg);
 *   load::ArrivalSchedule sched =
 *       load::buildArrivalSchedule(spec, sys.numClientCores());
 *   load::OpenLoopWorkload w(sys, spec, sched);
 *   sys.run();
 *   w.totals();
 */
class OpenLoopWorkload
{
  public:
    OpenLoopWorkload(NdpSystem &sys, const LoadSpec &spec,
                     const ArrivalSchedule &sched);

    OpenLoopWorkload(const OpenLoopWorkload &) = delete;
    OpenLoopWorkload &operator=(const OpenLoopWorkload &) = delete;

    /** Per-core accounting after the run. */
    const LoadCounters &coreCounters(unsigned core) const;

    /** Aggregate accounting after the run. */
    LoadCounters totals() const;

  private:
    /// Cursor + counters + in-flight lock set of one core; mutated only
    /// by that core's window workers (shard-local, so no
    /// synchronization needed). busyLocks/waiters hold at most
    /// `window` entries, so linear scans are cheap.
    struct PerCore
    {
        std::size_t cursor = 0;
        LoadCounters counters;
        /// Locks this core currently has an op in flight on.
        std::vector<std::uint32_t> busyLocks;
        /// FIFO of workers parked on a same-core busy lock (Queue
        /// policy); release hands the in-flight slot to the first
        /// matching waiter without clearing busyLocks.
        std::vector<std::pair<std::uint32_t, sim::Gate *>> waiters;
    };

    sim::Process worker(core::Core &c, unsigned coreIdx);

    NdpSystem &sys_;
    const LoadSpec &spec_;
    const ArrivalSchedule &sched_;
    sync::LockSet locks_;
    std::vector<PerCore> state_;
};

} // namespace syncron::load

#endif // SYNCRON_LOAD_OPENLOOP_HH
