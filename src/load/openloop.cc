#include "load/openloop.hh"

#include <algorithm>

#include "common/log.hh"
#include "sync/api.hh"
#include "system/system.hh"

namespace syncron::load {

OpenLoopWorkload::OpenLoopWorkload(NdpSystem &sys, const LoadSpec &spec,
                                   const ArrivalSchedule &sched)
    : sys_(sys), spec_(spec), sched_(sched)
{
    SYNCRON_ASSERT(sched.perCore.size() == sys.numClientCores(),
                   "arrival schedule covers "
                       << sched.perCore.size() << " cores, system has "
                       << sys.numClientCores());
    locks_ = sys.api().createLockSet(spec.numLocks);
    state_.resize(sched.perCore.size());

    const unsigned n = sys.numClientCores();
    for (unsigned i = 0; i < n; ++i) {
        core::Core &c = sys.clientCore(i);
        const unsigned slots = std::min<std::size_t>(
            spec.window, sched.perCore[i].size());
        for (unsigned w = 0; w < slots; ++w)
            sys.spawn(worker(c, i), c);
    }
}

const LoadCounters &
OpenLoopWorkload::coreCounters(unsigned core) const
{
    SYNCRON_ASSERT(core < state_.size(),
                   "core " << core << " out of range");
    return state_[core].counters;
}

LoadCounters
OpenLoopWorkload::totals() const
{
    LoadCounters total;
    for (const PerCore &pc : state_)
        total += pc.counters;
    return total;
}

sim::Process
OpenLoopWorkload::worker(core::Core &c, unsigned coreIdx)
{
    sync::SyncApi &api = sys_.api();
    sim::EventQueue &eq = c.machine().eq(c.unit());
    PerCore &st = state_[coreIdx];
    const std::vector<Arrival> &sched = sched_.perCore[coreIdx];

    while (st.cursor < sched.size()) {
        const Arrival a = sched[st.cursor++];
        if (a.tick > eq.now())
            co_await sim::Delay{eq, a.tick - eq.now()};

        const bool busy =
            std::find(st.busyLocks.begin(), st.busyLocks.end(),
                      a.lockIdx)
            != st.busyLocks.end();
        if (spec_.policy == OverloadPolicy::Drop) {
            // Shed anything that cannot issue at its scheduled tick:
            // the window was full when it came due, or the core
            // already has an op in flight on the same lock.
            if (eq.now() > a.tick || busy) {
                ++st.counters.dropped;
                continue;
            }
            st.busyLocks.push_back(a.lockIdx);
        } else {
            if (busy) {
                // Park until the owning worker's release hands this
                // lock's in-flight slot over (FIFO).
                sim::Gate gate(eq);
                st.waiters.emplace_back(a.lockIdx, &gate);
                co_await gate;
            } else {
                st.busyLocks.push_back(a.lockIdx);
            }
            if (eq.now() > a.tick) {
                ++st.counters.queued;
                st.counters.queueDelayTicks += eq.now() - a.tick;
            }
        }
        ++st.counters.issued;

        const sync::Lock &lock = locks_[a.lockIdx];
        sync::SyncFuture acq = api.submitAcquire(c, lock);
        co_await acq;
        if (spec_.holdTicks > 0)
            co_await sim::Delay{eq, spec_.holdTicks};
        sync::SyncFuture rel = api.submitRelease(c, lock);
        co_await rel;

        // Hand the in-flight slot to the first waiter on this lock
        // (busyLocks keeps the entry: ownership transfers), or clear.
        bool handedOff = false;
        for (auto it = st.waiters.begin(); it != st.waiters.end();
             ++it) {
            if (it->first == a.lockIdx) {
                sim::Gate *gate = it->second;
                st.waiters.erase(it);
                gate->open();
                handedOff = true;
                break;
            }
        }
        if (!handedOff) {
            st.busyLocks.erase(std::find(st.busyLocks.begin(),
                                         st.busyLocks.end(),
                                         a.lockIdx));
        }
    }
}

} // namespace syncron::load
