#include "load/slo.hh"

#include <sstream>

#include "common/stats.hh"
#include "common/units.hh"
#include "harness/json.hh"
#include "sync/opcodes.hh"

namespace syncron::load {

double
SloPoint::achievedPerUs() const
{
    if (simTicks == 0)
        return 0.0;
    return static_cast<double>(issued)
           / (static_cast<double>(simTicks)
              / static_cast<double>(kTicksPerUs));
}

std::string
curveToJson(const SloCurve &curve)
{
    std::ostringstream os;
    harness::JsonWriter j(os);
    j.beginObject();
    j.field("backend", curve.backend);
    j.key("points");
    j.beginArray();
    for (const SloPoint &p : curve.points) {
        j.beginObject();
        j.field("ratePerUs", p.ratePerUs);
        j.field("simTicks", p.simTicks);
        j.field("offered", p.offered);
        j.field("issued", p.issued);
        j.field("dropped", p.dropped);
        j.field("queued", p.queued);
        j.field("queueDelayTicks", p.queueDelayTicks);
        j.field("achievedPerUs", p.achievedPerUs());
        j.field("p50Ns", p.p50Ns);
        j.field("p90Ns", p.p90Ns);
        j.field("p99Ns", p.p99Ns);
        j.field("p999Ns", p.p999Ns);
        j.endObject();
    }
    j.endArray();
    j.endObject();
    return os.str();
}

SloPoint
makeSloPoint(double ratePerUs, Tick simTicks, std::uint64_t offered,
             const LoadCounters &counters, const SystemStats &stats)
{
    SloPoint p;
    p.ratePerUs = ratePerUs;
    p.simTicks = simTicks;
    p.offered = offered;
    p.issued = counters.issued;
    p.dropped = counters.dropped;
    p.queued = counters.queued;
    p.queueDelayTicks = counters.queueDelayTicks;
    const SyncOpLatency &acq = stats.syncLatency[static_cast<unsigned>(
        sync::OpKind::LockAcquire)];
    const double perNs = static_cast<double>(kTicksPerNs);
    p.p50Ns = acq.percentileTicks(0.50) / perNs;
    p.p90Ns = acq.percentileTicks(0.90) / perNs;
    p.p99Ns = acq.percentileTicks(0.99) / perNs;
    p.p999Ns = acq.percentileTicks(0.999) / perNs;
    return p;
}

} // namespace syncron::load
