/**
 * @file
 * SLO layer over open-loop runs: per-offered-load latency curve types,
 * their deterministic JSON serialization, and the max-sustainable-rate
 * search.
 *
 * A latency-vs-offered-load curve is the standing comparison this
 * subsystem adds: sweep offered rates, record tail percentiles at each,
 * and a backend's quality is the highest rate it sustains under a p99
 * SLO — sharper than closed-loop throughput bars, which cannot see the
 * knee. Curve points carry only simulated quantities (no host timing),
 * so serializing a curve twice for the same seed yields byte-identical
 * JSON; tests and the bench's inline determinism check rely on that.
 */

#ifndef SYNCRON_LOAD_SLO_HH
#define SYNCRON_LOAD_SLO_HH

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "load/openloop.hh"

namespace syncron {
struct SystemStats;
} // namespace syncron

namespace syncron::load {

/** One offered-load point of a latency curve (simulated values only). */
struct SloPoint
{
    double ratePerUs = 0.0; ///< offered arrivals per core per us
    Tick simTicks = 0;      ///< simulated run length

    std::uint64_t offered = 0; ///< scheduled arrivals
    std::uint64_t issued = 0;  ///< arrivals that became sync ops
    std::uint64_t dropped = 0; ///< shed arrivals (Drop policy)
    std::uint64_t queued = 0;  ///< arrivals issued late (Queue policy)
    std::uint64_t queueDelayTicks = 0; ///< total lateness of the queued

    // Acquire-latency percentiles at this load, nanoseconds.
    double p50Ns = 0.0;
    double p90Ns = 0.0;
    double p99Ns = 0.0;
    double p999Ns = 0.0;

    /** Completed operations per simulated microsecond (all cores). */
    double achievedPerUs() const;
};

/** Latency-vs-offered-load curve of one backend. */
struct SloCurve
{
    std::string backend;
    std::vector<SloPoint> points;
};

/**
 * Serializes a curve to JSON. Pure function of the (simulated) curve
 * contents: same seed -> same curve -> byte-identical string.
 */
std::string curveToJson(const SloCurve &curve);

/**
 * Assembles one curve point from an open-loop run's outputs: the
 * offered rate, the run's accounting, and the lock-acquire latency
 * percentiles extracted from @p stats.
 */
SloPoint makeSloPoint(double ratePerUs, Tick simTicks,
                      std::uint64_t offered,
                      const LoadCounters &counters,
                      const SystemStats &stats);

/** Outcome of findMaxSustainableRate. */
struct SloSearchResult
{
    /// Highest probed rate meeting the SLO; 0 when even loRate fails.
    double maxRatePerUs = 0.0;
    double p99NsAtMax = 0.0; ///< p99 measured at maxRatePerUs
    unsigned probes = 0;     ///< open-loop runs the search spent
    bool loFailed = false;   ///< loRate already violates the SLO
    bool hiPassed = false;   ///< hiRate still meets the SLO
};

/**
 * Binary-searches the highest offered rate whose open-loop run meets a
 * p99 SLO. @p probe is invoked as probe(ratePerUs) and must return an
 * SloPoint measured at that rate; a point meets the SLO when its p99 is
 * within @p sloP99Ns and it shed nothing. The bisection is geometric
 * (offered rates span decades), keeping the invariant lo meets / hi
 * fails between iterations. The probe is a template parameter (no
 * type-erased callable wrapper): it runs whole simulations in src/.
 */
template <typename Probe>
SloSearchResult
findMaxSustainableRate(Probe &&probe, double loRate, double hiRate,
                       double sloP99Ns, unsigned iters = 6)
{
    SloSearchResult result;
    auto meets = [sloP99Ns](const SloPoint &p) {
        return p.p99Ns <= sloP99Ns && p.dropped == 0;
    };

    SloPoint lo = probe(loRate);
    ++result.probes;
    if (!meets(lo)) {
        result.loFailed = true;
        return result;
    }
    SloPoint hi = probe(hiRate);
    ++result.probes;
    if (meets(hi)) {
        result.hiPassed = true;
        result.maxRatePerUs = hiRate;
        result.p99NsAtMax = hi.p99Ns;
        return result;
    }

    double loR = loRate;
    double hiR = hiRate;
    SloPoint best = std::move(lo);
    for (unsigned i = 0; i < iters; ++i) {
        const double mid = std::sqrt(loR * hiR);
        SloPoint p = probe(mid);
        ++result.probes;
        if (meets(p)) {
            loR = mid;
            best = std::move(p);
        } else {
            hiR = mid;
        }
    }
    result.maxRatePerUs = loR;
    result.p99NsAtMax = best.p99Ns;
    return result;
}

} // namespace syncron::load

#endif // SYNCRON_LOAD_SLO_HH
