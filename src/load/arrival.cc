#include "load/arrival.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/units.hh"

namespace syncron::load {

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Fixed: return "fixed";
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Bursty: return "bursty";
      case ArrivalKind::Diurnal: return "diurnal";
    }
    return "?";
}

const char *
overloadPolicyName(OverloadPolicy policy)
{
    return policy == OverloadPolicy::Drop ? "drop" : "queue";
}

namespace {

bool
parseDouble(const std::string &text, double &out)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end == nullptr || *end != '\0' || errno != 0
        || !std::isfinite(v))
        return false;
    out = v;
    return true;
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end == nullptr || *end != '\0' || errno != 0)
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
kindFromName(const std::string &name, ArrivalKind &out)
{
    for (ArrivalKind k :
         {ArrivalKind::Fixed, ArrivalKind::Poisson, ArrivalKind::Bursty,
          ArrivalKind::Diurnal}) {
        if (name == arrivalKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

std::string
fmtG(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

} // namespace

bool
LoadSpec::fromString(const std::string &text, LoadSpec &out,
                     std::string &error)
{
    LoadSpec spec;
    const std::size_t colon = text.find(':');
    const std::string kindName = text.substr(0, colon);
    if (!kindFromName(kindName, spec.kind)) {
        error = "unknown arrival kind '" + kindName
                + "' (need fixed, poisson, bursty, or diurnal)";
        return false;
    }

    std::string rest =
        colon == std::string::npos ? "" : text.substr(colon + 1);
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string pair = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);

        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = "malformed key=value pair '" + pair + "'";
            return false;
        }
        const std::string key = pair.substr(0, eq);
        const std::string val = pair.substr(eq + 1);

        double d = 0.0;
        std::uint64_t u = 0;
        if (key == "rate") {
            if (!parseDouble(val, d) || !(d > 0.0) || d > 1e6) {
                error = "bad rate '" + val
                        + "' (need arrivals/us/core in (0, 1e6])";
                return false;
            }
            spec.ratePerUs = d;
        } else if (key == "ops") {
            if (!parseU64(val, u) || u < 1 || u > 100000000) {
                error = "bad ops '" + val + "' (need 1..1e8)";
                return false;
            }
            spec.opsPerCore = static_cast<unsigned>(u);
        } else if (key == "window") {
            if (!parseU64(val, u) || u < 1 || u > kMaxWindow) {
                error = "bad window '" + val + "' (need 1.."
                        + std::to_string(kMaxWindow) + ")";
                return false;
            }
            spec.window = static_cast<unsigned>(u);
        } else if (key == "locks") {
            if (!parseU64(val, u) || u < 1 || u > 1000000) {
                error = "bad locks '" + val + "' (need 1..1e6)";
                return false;
            }
            spec.numLocks = static_cast<unsigned>(u);
        } else if (key == "hold") {
            if (!parseDouble(val, d) || d < 0.0 || d > 1e9) {
                error = "bad hold '" + val + "' (need ns in [0, 1e9])";
                return false;
            }
            spec.holdTicks = nsToTicks(d);
        } else if (key == "policy") {
            if (val == "queue") {
                spec.policy = OverloadPolicy::Queue;
            } else if (val == "drop") {
                spec.policy = OverloadPolicy::Drop;
            } else {
                error = "bad policy '" + val + "' (need queue or drop)";
                return false;
            }
        } else if (key == "seed") {
            if (!parseU64(val, u) || u < 1) {
                error = "bad seed '" + val + "' (need >= 1)";
                return false;
            }
            spec.seed = u;
        } else if (key == "burst") {
            if (!parseU64(val, u) || u < 1 || u > 100000) {
                error = "bad burst '" + val + "' (need 1..1e5)";
                return false;
            }
            spec.burstLen = static_cast<unsigned>(u);
        } else if (key == "gapx") {
            if (!parseDouble(val, d) || !(d > 0.0) || d > 1e6) {
                error = "bad gapx '" + val + "' (need (0, 1e6])";
                return false;
            }
            spec.burstGapFactor = d;
        } else if (key == "phases") {
            if (!parseU64(val, u) || u < 1 || u > 100000) {
                error = "bad phases '" + val + "' (need 1..1e5)";
                return false;
            }
            spec.diurnalPhases = static_cast<unsigned>(u);
        } else if (key == "amp") {
            if (!parseDouble(val, d) || d < 0.0 || !(d < 1.0)) {
                error = "bad amp '" + val + "' (need [0, 1))";
                return false;
            }
            spec.diurnalAmplitude = d;
        } else {
            error = "unknown load key '" + key
                    + "' (known: rate, ops, window, locks, hold, "
                      "policy, seed, burst, gapx, phases, amp)";
            return false;
        }
    }

    out = spec;
    return true;
}

std::string
LoadSpec::toString() const
{
    std::string s = arrivalKindName(kind);
    s += ":rate=" + fmtG(ratePerUs);
    s += ",ops=" + std::to_string(opsPerCore);
    s += ",window=" + std::to_string(window);
    s += ",locks=" + std::to_string(numLocks);
    s += ",hold=" + fmtG(ticksToNs(holdTicks));
    s += ",policy=" + std::string(overloadPolicyName(policy));
    s += ",seed=" + std::to_string(seed);
    if (kind == ArrivalKind::Bursty) {
        s += ",burst=" + std::to_string(burstLen);
        s += ",gapx=" + fmtG(burstGapFactor);
    }
    if (kind == ArrivalKind::Diurnal) {
        s += ",phases=" + std::to_string(diurnalPhases);
        s += ",amp=" + fmtG(diurnalAmplitude);
    }
    return s;
}

double
LoadSpec::meanGapTicks() const
{
    return static_cast<double>(kTicksPerUs) / ratePerUs;
}

std::uint64_t
ArrivalSchedule::totalArrivals() const
{
    std::uint64_t total = 0;
    for (const std::vector<Arrival> &core : perCore)
        total += core.size();
    return total;
}

Tick
ArrivalSchedule::horizon() const
{
    Tick last = 0;
    for (const std::vector<Arrival> &core : perCore) {
        if (!core.empty() && core.back().tick > last)
            last = core.back().tick;
    }
    return last;
}

namespace {

/** Exponential gap with mean @p meanTicks, floored at one tick. */
Tick
expGap(Rng &rng, double meanTicks)
{
    const double u = rng.uniform(); // [0, 1) => 1-u in (0, 1]
    const double gap = -meanTicks * std::log(1.0 - u);
    return gap < 1.0 ? 1 : static_cast<Tick>(gap);
}

} // namespace

ArrivalSchedule
buildArrivalSchedule(const LoadSpec &spec, unsigned numCores)
{
    SYNCRON_ASSERT(spec.ratePerUs > 0.0, "offered rate must be positive");
    SYNCRON_ASSERT(spec.numLocks > 0, "need at least one lock");

    const double mean = spec.meanGapTicks();
    constexpr double kTwoPi = 6.283185307179586;

    ArrivalSchedule sched;
    sched.perCore.resize(numCores);
    for (unsigned core = 0; core < numCores; ++core) {
        // Independent per-core stream: the schedule of core i never
        // depends on how many other cores exist or what they drew.
        Rng rng(spec.seed ^ (0x9e3779b97f4a7c15ULL * (core + 1)));
        std::vector<Arrival> &out = sched.perCore[core];
        out.reserve(spec.opsPerCore);

        Tick now = 0;
        for (unsigned i = 0; i < spec.opsPerCore; ++i) {
            Tick gap = 1;
            switch (spec.kind) {
              case ArrivalKind::Fixed:
                gap = mean < 1.0 ? 1 : static_cast<Tick>(mean);
                break;
              case ArrivalKind::Poisson:
                gap = expGap(rng, mean);
                break;
              case ArrivalKind::Bursty:
                // On/off: burstLen back-to-back arrivals, then an idle
                // period long enough to keep the long-run rate below
                // the nominal one (the overload comes in spikes).
                gap = i % spec.burstLen == 0
                          ? expGap(rng, spec.burstGapFactor * mean)
                          : 1;
                break;
              case ArrivalKind::Diurnal: {
                // Rate modulated over the run: arrival i sits at phase
                // i/opsPerCore of the sweep, with diurnalPhases full
                // sine periods across it.
                const double frac = static_cast<double>(i)
                                    / static_cast<double>(spec.opsPerCore);
                const double factor =
                    1.0
                    + spec.diurnalAmplitude
                          * std::sin(kTwoPi * spec.diurnalPhases * frac);
                gap = expGap(rng, mean / factor);
                break;
              }
            }
            now += gap;
            out.push_back(Arrival{
                now, static_cast<std::uint32_t>(rng.below(spec.numLocks))});
        }
    }
    return sched;
}

} // namespace syncron::load
