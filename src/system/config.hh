/**
 * @file
 * Configuration of the simulated NDP system — the paper's Table 5 plus
 * the synchronization-scheme selection used throughout the evaluation.
 */

#ifndef SYNCRON_SYSTEM_CONFIG_HH
#define SYNCRON_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "cache/cache.hh"
#include "common/types.hh"
#include "durability/pm_model.hh"
#include "mem/dram.hh"
#include "net/crossbar.hh"
#include "net/link.hh"

namespace syncron {

/**
 * Synchronization scheme under evaluation (Section 5, "Comparison
 * Points", plus the design-ablation variants of Section 6.7).
 */
enum class Scheme
{
    Ideal,        ///< zero-overhead synchronization
    Central,      ///< one server NDP core for the whole system (Tesseract)
    Hier,         ///< one server NDP core per unit (Gao et al. / pLock)
    SynCron,      ///< the paper's mechanism: hierarchical SEs with STs
    SynCronFlat,  ///< ablation: cores message the Master SE directly
    /// Overflow ablations (Fig. 23): MiSAR-style abort to a software
    /// fallback instead of SynCron's integrated hardware scheme.
    SynCronCentralOvrfl,
    SynCronDistribOvrfl,
};

/** Short scheme name for table output. */
const char *schemeName(Scheme scheme);

/**
 * Inverse of schemeName(): parses a scheme from its string name.
 * @return false when @p name matches no scheme (out is untouched)
 */
bool schemeFromName(std::string_view name, Scheme &out);

/** Full system configuration (defaults = Table 5, 2.5D HBM config). */
struct SystemConfig
{
    // -- Topology
    unsigned numUnits = 4;       ///< Table 5: 4 stacks / NDP units
    unsigned coresPerUnit = 16;  ///< Table 5: 16 in-order cores per unit

    /**
     * Client cores per unit actually running the workload. One core per
     * unit is reserved (server in Central/Hier, disabled under SynCron)
     * so all schemes use the same thread-level parallelism (Section 5:
     * "15 per NDP unit").
     */
    unsigned clientCoresPerUnit = 15;

    // -- Memory technology
    mem::DramTech dramTech = mem::DramTech::Hbm;

    // -- Interconnect
    net::CrossbarParams xbar{};
    net::LinkParams link{};

    // -- Caches
    cache::CacheParams l1{};
    double l1HitPj = 23.0;  ///< Table 5: 23 pJ per hit
    double l1MissPj = 47.0; ///< Table 5: 47 pJ per miss

    // -- Synchronization Engine (Table 5 "Synchronization Engine" row)
    std::uint32_t stEntries = 64;          ///< ST: 64 entries
    std::uint32_t indexingCounters = 256;  ///< 256 counters (8 LSB index)
    std::uint32_t seServiceCycles = 12;    ///< 12 SPU cycles per message
    Tick seCyclePeriod = 1000;             ///< SPU @1 GHz -> 1000 ps

    /**
     * Software message-handling cost on a server NDP core (Central /
     * Hier), in core cycles, excluding the cache/memory access for the
     * variable itself.
     *
     * chosen: not given by the paper. 40 cycles of mailbox read, decode,
     * dispatch, waiting-list update, and response composition on a
     * 2.5 GHz in-order core (16 ns) plus the L1 read-modify-write
     * (3.2 ns on hits) makes a server ~60% slower per message than an SE
     * (12 ns), matching Fig. 10's SynCron-vs-Hier gap at the
     * 200-instruction interval.
     */
    std::uint32_t serverSwOverheadCycles = 40;

    /**
     * Optional lock-fairness threshold (paper Section 4.4.2, left as
     * future work there; implemented here as an extension). 0 disables:
     * an SE keeps serving local requesters while any exist — the paper's
     * default behaviour. N > 0 transfers the lock to a remote waiter
     * after N consecutive local grants.
     */
    std::uint32_t localGrantThreshold = 0;

    // -- Scheme / workload
    Scheme scheme = Scheme::SynCron;

    /**
     * Backend selected by registry name; empty = derive from scheme.
     * Lets harnesses/CLIs/configs select any backend registered with
     * sync::BackendRegistry, including out-of-tree ones with no Scheme
     * enumerator.
     */
    std::string backendName;

    /**
     * When non-empty, the system captures every synchronization
     * operation (trace::TraceCapture installed on the SyncApi) and
     * writes the varint trace file here when the run completes.
     * Benches expose this as --trace-out.
     */
    std::string tracePath;

    /**
     * When non-empty, the captured operation stream is additionally
     * streamed live to a trace collector at this endpoint ("host:port"
     * or "fd:N"; see src/tracenet/). Streaming is best-effort: when
     * the collector is unreachable or vanishes mid-run, the system
     * falls back to writing the complete local capture to tracePath
     * (or a fallback file when tracePath is empty). Benches expose
     * this as --trace-stream.
     */
    std::string traceStream;

    /**
     * Runs the sync-correctness analyses (analysis::LiveAnalyzer —
     * lockset race checker, lock-order deadlock analyzer, misuse
     * linter) over the operation stream. Composes with tracePath: both
     * hooks hang off the same SyncApi::notifyOp() dispatch. Benches
     * expose this as --analyze.
     */
    bool analyze = false;

    /**
     * With analyze set: fatal() when the run produced findings (the
     * default — a clean stream is the contract). Tests that seed
     * defects on purpose clear this and inspect the report instead.
     */
    bool analyzeFatal = true;

    std::uint64_t seed = 1;

    // -- Durability (crash-consistent SE state; src/durability/)
    /**
     * Persist granularity for the SE-state write-ahead log. Off models
     * no durability (the paper's baseline); Eager persists every
     * completion through the modeled PM write before the requester may
     * observe it; Epoch stages completions and flushes every
     * persistEpochOps records (a crash loses the staged tail).
     */
    durability::PersistMode persistMode = durability::PersistMode::Off;

    /** Epoch mode: completions staged per WAL flush (>= 1). */
    std::uint32_t persistEpochOps = 64;

    /** Modeled persistent-memory write path (latency + energy). */
    durability::PmParams pm{};

    /**
     * Deterministic crash injection: when non-zero, the event loop
     * stops before any event at or past this tick would run and the
     * machine is torn down mid-run; the persisted image survives for
     * recovery (durability::RecoveryEngine). 0 = never crash.
     */
    Tick crashAtTick = 0;

    // -- Sharded simulation (conservative PDES; sim/sharded_kernel.hh)
    /**
     * Host threads the one simulation is sharded across. Units are
     * split into contiguous blocks, one per shard, each owning a
     * private EventQueue; cross-unit traffic crosses shard boundaries
     * through Machine's mailbox with a conservative lookahead derived
     * from the link + crossbar latencies. Results are bit-identical to
     * simShards = 1. Clamped to numUnits; collapses to 1 when the
     * selected backend is not shard-safe (sync::BackendRegistry) or
     * when the lookahead is zero (zero-latency sweeps -> lockstep).
     */
    unsigned simShards = 1;

    /** Total number of client cores in the system. */
    unsigned
    totalClientCores() const
    {
        return numUnits * clientCoresPerUnit;
    }

    /** Total number of cores (client + reserved). */
    unsigned totalCores() const { return numUnits * coresPerUnit; }

    /**
     * Dense index (0..totalClientCores()-1, unit-major) of the client
     * core with system-wide id @p core. Encodes the one core-ID layout
     * invariant — NdpSystem assigns id `unit * coresPerUnit + local`
     * to client core `local` of each unit — shared by NdpSystem core
     * construction, trace capture, and trace replay; keep them in sync
     * through this helper. Only valid for client cores
     * (core % coresPerUnit < clientCoresPerUnit).
     */
    unsigned
    denseClientIndex(CoreId core) const
    {
        return (core / coresPerUnit) * clientCoresPerUnit
               + (core % coresPerUnit);
    }

    /** Checks internal consistency; fatal()s on user error. */
    void validate() const;

    /** Convenience: a config with @p n units and @p scheme. */
    static SystemConfig make(Scheme scheme, unsigned numUnits = 4,
                             unsigned clientCoresPerUnit = 15);
};

} // namespace syncron

#endif // SYNCRON_SYSTEM_CONFIG_HH
