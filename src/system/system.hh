/**
 * @file
 * NdpSystem: one fully assembled simulated NDP system — the hardware
 * platform (Machine), the synchronization backend selected by the
 * configuration's Scheme, the client NDP cores, and the run loop that
 * drives workload coroutines to completion.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   SystemConfig cfg = SystemConfig::make(Scheme::SynCron);
 *   NdpSystem sys(cfg);
 *   for (unsigned i = 0; i < sys.numClientCores(); ++i)
 *       sys.spawn(myKernel(sys.clientCore(i), sys.api()));
 *   sys.run();
 *   // sys.elapsed(), sys.stats(), computeEnergy(...)
 */

#ifndef SYNCRON_SYSTEM_SYSTEM_HH
#define SYNCRON_SYSTEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/core.hh"
#include "sync/api.hh"
#include "sync/backend.hh"
#include "syncron/engine.hh"
#include "system/config.hh"
#include "system/machine.hh"

namespace syncron::trace {
class TraceCapture;
} // namespace syncron::trace

namespace syncron::tracenet {
class StreamingTraceSink;
} // namespace syncron::tracenet

namespace syncron::analysis {
class LiveAnalyzer;
class ShardedObserver;
} // namespace syncron::analysis

namespace syncron::durability {
class DurabilityManager;
} // namespace syncron::durability

namespace syncron {

/** A complete simulated NDP system instance. */
class NdpSystem
{
  public:
    explicit NdpSystem(const SystemConfig &cfg);
    ~NdpSystem();

    NdpSystem(const NdpSystem &) = delete;
    NdpSystem &operator=(const NdpSystem &) = delete;

    Machine &machine() { return *machine_; }
    sync::SyncApi &api() { return *api_; }
    sync::SyncBackend &backend() { return *backend_; }

    /**
     * The SynCron engine, when the configured scheme is SE- or
     * server-based (SynCron, Hier, overflow variants); nullptr for
     * Ideal/Central/flat.
     */
    engine::SynCronBackend *syncronBackend() { return engineView_; }

    /** Number of client cores executing the workload. */
    unsigned numClientCores() const;

    /** The @p idx -th client core; cores are distributed round-robin by
     *  unit (core 0 -> unit 0, core 1 -> unit 0, ..., 15 -> unit 1...). */
    core::Core &clientCore(unsigned idx);

    /**
     * Registers and starts a workload coroutine on shard 0's queue.
     * Only valid on single-shard machines (a coroutine's code segments
     * run on the queue that resumed them, so on a sharded machine every
     * process must be homed on its core's shard — use the overload).
     */
    void spawn(sim::Process process);

    /**
     * Registers and starts a workload coroutine on @p core 's shard, so
     * every segment of the coroutine executes on the thread that owns
     * the core's unit. The workload must drive only @p core (the usual
     * one-coroutine-per-core shape).
     */
    void spawn(sim::Process process, const core::Core &core);

    /**
     * Runs the simulation until every spawned process completes, driving
     * the per-shard event queues through the conservative-PDES windowed
     * loop (sim::ShardedKernel; a single-shard machine degenerates to
     * the plain event loop plus mailbox barriers).
     * fatal()s on deadlock (event queues empty, processes pending).
     * With SystemConfig::tracePath set, writes the captured
     * synchronization-operation trace there on completion.
     *
     * With SystemConfig::crashAtTick set, the run may instead stop at
     * the injected crash: the machine is marked crashed, processes stay
     * blocked mid-operation, and run() returns early — the normal
     * end-of-run bookkeeping (deadlock check, trace writeout, analysis)
     * is skipped. crashed() reports which way the run ended; the
     * durability manager's persisted image survives for recovery.
     */
    void run();

    /** True when the last run() ended at the injected crash. */
    bool crashed() const { return machine_->crashed(); }

    /**
     * The synchronization-operation capture installed when
     * SystemConfig::tracePath or ::traceStream is set; nullptr when
     * not tracing. With traceStream set, this is the capture inside
     * the streaming sink — still the complete local record.
     */
    trace::TraceCapture *traceCapture();

    /**
     * The streaming sink installed when SystemConfig::traceStream is
     * set; nullptr otherwise. Exposed so tests can inspect the
     * degradation state after run().
     */
    tracenet::StreamingTraceSink *streamSink()
    {
        return streamSink_.get();
    }

    /**
     * The live sync-correctness analyzer installed when
     * SystemConfig::analyze is set; nullptr when not analyzing. run()
     * finishes it and (with analyzeFatal) fatal()s on findings; tests
     * seeding defects clear analyzeFatal and read analyzer()->report()
     * afterwards.
     */
    analysis::LiveAnalyzer *analyzer() { return analyzer_.get(); }

    /**
     * The durability manager installed when SystemConfig::persistMode
     * is not Off; nullptr otherwise. Holds the write-ahead log and the
     * snapshot()/walTrace() surface the crash-recovery flow consumes.
     */
    durability::DurabilityManager *durability()
    {
        return durability_.get();
    }

    /** Simulated time elapsed so far (max across shard queues). */
    Tick elapsed() const;

    const SystemStats &stats() const { return machine_->stats(); }
    const SystemConfig &config() const { return machine_->config(); }

  private:
    std::unique_ptr<Machine> machine_;
    std::unique_ptr<sync::SyncBackend> backend_;
    engine::SynCronBackend *engineView_ = nullptr;
    std::unique_ptr<sync::SyncApi> api_;
    std::unique_ptr<trace::TraceCapture> capture_;
    std::unique_ptr<tracenet::StreamingTraceSink> streamSink_;
    std::unique_ptr<analysis::LiveAnalyzer> analyzer_;
    /// Per-shard buffering front end for the analyzer, installed only
    /// when the machine is sharded (analysis/sharded_observer.hh).
    std::unique_ptr<analysis::ShardedObserver> shardedObs_;
    std::unique_ptr<durability::DurabilityManager> durability_;
    std::vector<std::unique_ptr<core::Core>> cores_; ///< client cores
    /// Declared last: coroutine frames are destroyed before the api and
    /// backend they reference (crash teardown unwinds guards mid-op).
    std::vector<sim::Process> processes_;
};

} // namespace syncron

#endif // SYNCRON_SYSTEM_SYSTEM_HH
