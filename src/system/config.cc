#include "system/config.hh"

#include "common/log.hh"

namespace syncron {

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Ideal: return "Ideal";
      case Scheme::Central: return "Central";
      case Scheme::Hier: return "Hier";
      case Scheme::SynCron: return "SynCron";
      case Scheme::SynCronFlat: return "SynCron-flat";
      case Scheme::SynCronCentralOvrfl: return "SynCron_CentralOvrfl";
      case Scheme::SynCronDistribOvrfl: return "SynCron_DistribOvrfl";
    }
    return "?";
}

bool
schemeFromName(std::string_view name, Scheme &out)
{
    for (Scheme s : {Scheme::Ideal, Scheme::Central, Scheme::Hier,
                     Scheme::SynCron, Scheme::SynCronFlat,
                     Scheme::SynCronCentralOvrfl,
                     Scheme::SynCronDistribOvrfl}) {
        if (name == schemeName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

void
SystemConfig::validate() const
{
    if (numUnits < 1 || numUnits > 16)
        SYNCRON_FATAL("numUnits must be in [1, 16], got " << numUnits);
    if (coresPerUnit < 1 || coresPerUnit > 64)
        SYNCRON_FATAL("coresPerUnit must be in [1, 64], got "
                      << coresPerUnit);
    if (clientCoresPerUnit < 1 || clientCoresPerUnit > coresPerUnit)
        SYNCRON_FATAL("clientCoresPerUnit must be in [1, coresPerUnit]");
    if (stEntries < 1)
        SYNCRON_FATAL("stEntries must be >= 1");
    if (indexingCounters < 1)
        SYNCRON_FATAL("indexingCounters must be >= 1");
    if (persistEpochOps < 1)
        SYNCRON_FATAL("persistEpochOps must be >= 1");
    if (pm.writeTicks < 1)
        SYNCRON_FATAL("pm.writeTicks must be >= 1");
    if (simShards < 1)
        SYNCRON_FATAL("simShards must be >= 1");
    if (simShards > 1) {
        // These subsystems assume one event stream / one teardown
        // order; the harness surfaces the same constraints as
        // --sim-shards usage errors.
        if (!tracePath.empty())
            SYNCRON_FATAL("trace capture requires simShards == 1");
        if (crashAtTick != 0)
            SYNCRON_FATAL("crash injection requires simShards == 1");
        if (persistMode != durability::PersistMode::Off)
            SYNCRON_FATAL("durability requires simShards == 1");
    }
}

SystemConfig
SystemConfig::make(Scheme scheme, unsigned numUnits,
                   unsigned clientCoresPerUnit)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.numUnits = numUnits;
    cfg.clientCoresPerUnit = clientCoresPerUnit;
    cfg.validate();
    return cfg;
}

} // namespace syncron
