#include "system/machine.hh"

#include "common/log.hh"

namespace syncron {

Machine::Machine(const SystemConfig &cfg)
    : cfg_(cfg), addrSpace_(cfg.numUnits)
{
    cfg_.validate();
    const mem::DramParams dramParams =
        mem::DramParams::forTech(cfg_.dramTech);
    xbars_.reserve(cfg_.numUnits);
    drams_.reserve(cfg_.numUnits);
    for (unsigned u = 0; u < cfg_.numUnits; ++u) {
        xbars_.push_back(
            std::make_unique<net::Crossbar>(cfg_.xbar, stats_));
        drams_.push_back(std::make_unique<mem::Dram>(dramParams, stats_));
    }
    links_ = std::make_unique<net::LinkFabric>(cfg_.numUnits, cfg_.link,
                                               stats_);
}

net::Crossbar &
Machine::xbar(UnitId unit)
{
    SYNCRON_ASSERT(unit < xbars_.size(), "xbar: unknown unit " << unit);
    return *xbars_[unit];
}

mem::Dram &
Machine::dram(UnitId unit)
{
    SYNCRON_ASSERT(unit < drams_.size(), "dram: unknown unit " << unit);
    return *drams_[unit];
}

Tick
Machine::routeMessage(Tick start, UnitId from, UnitId to,
                      std::uint32_t bits)
{
    if (from == to)
        return xbar(from).transfer(start, bits);

    Tick t = xbar(from).transfer(start, bits);
    t = links_->send(t, from, to, (bits + 7) / 8);
    return xbar(to).transfer(t, bits);
}

Tick
Machine::memoryAccess(Tick start, UnitId from, Addr addr, bool isWrite,
                      std::uint32_t bytes)
{
    const UnitId home = mem::unitOfAddr(addr);
    SYNCRON_ASSERT(home < cfg_.numUnits,
                   "access to address outside the system: " << addr);

    // Request carries the write data; the response carries read data.
    const std::uint32_t reqBits =
        kMemReqHeaderBits + (isWrite ? bytes * 8 : 0);
    const std::uint32_t respBits =
        kMemRespHeaderBits + (isWrite ? 0 : bytes * 8);

    Tick t = routeMessage(start, from, home, reqBits);
    t = dram(home).access(t, addr, isWrite, bytes);
    return routeMessage(t, home, from, respBits);
}

} // namespace syncron
