#include "system/machine.hh"

#include <algorithm>

#include "common/log.hh"

namespace syncron {

Machine::Machine(const SystemConfig &cfg)
    : cfg_(cfg), addrSpace_(cfg.numUnits)
{
    cfg_.validate();

    const Tick la = lookahead();
    unsigned shardCount = std::min(cfg_.simShards, cfg_.numUnits);
    if (la == 0) {
        // Zero-latency sweep: no conservative window exists, fall back
        // to lockstep (one shard, synchronous transport).
        shardCount = 1;
    }
    mailboxActive_ = la > 0;
    unitsPerShard_ = (cfg_.numUnits + shardCount - 1) / shardCount;
    const unsigned actualShards =
        (cfg_.numUnits + unitsPerShard_ - 1) / unitsPerShard_;
    shards_.reserve(actualShards);
    for (unsigned s = 0; s < actualShards; ++s)
        shards_.push_back(std::make_unique<Shard>());
    unitSeq_.assign(cfg_.numUnits, 0);

    const mem::DramParams dramParams =
        mem::DramParams::forTech(cfg_.dramTech);
    xbars_.reserve(cfg_.numUnits);
    drams_.reserve(cfg_.numUnits);
    std::vector<SystemStats *> linkStats;
    linkStats.reserve(cfg_.numUnits);
    for (unsigned u = 0; u < cfg_.numUnits; ++u) {
        SystemStats &st = statsFor(u);
        xbars_.push_back(std::make_unique<net::Crossbar>(cfg_.xbar, st));
        drams_.push_back(std::make_unique<mem::Dram>(dramParams, st));
        linkStats.push_back(&st);
    }
    links_ = std::make_unique<net::LinkFabric>(cfg_.numUnits, cfg_.link,
                                               std::move(linkStats));
}

Machine::~Machine() = default;

net::Crossbar &
Machine::xbar(UnitId unit)
{
    SYNCRON_ASSERT(unit < xbars_.size(), "xbar: unknown unit " << unit);
    return *xbars_[unit];
}

mem::Dram &
Machine::dram(UnitId unit)
{
    SYNCRON_ASSERT(unit < drams_.size(), "dram: unknown unit " << unit);
    return *drams_[unit];
}

std::vector<sim::EventQueue *>
Machine::shardQueues()
{
    std::vector<sim::EventQueue *> queues;
    queues.reserve(shards_.size());
    for (auto &s : shards_)
        queues.push_back(&s->eq);
    return queues;
}

Tick
Machine::lookahead() const
{
    // Floor of any cross-unit path: the source-crossbar traversal of a
    // minimal (one-flit) message, the link controller overhead, and the
    // link flight time. Serialization (>= 1 tick) and the destination
    // crossbar add further margin on top — envelopes stamp the real,
    // larger arrival tick; this bound only has to be conservative.
    const net::CrossbarParams &x = cfg_.xbar;
    const Tick srcXbar =
        static_cast<Tick>(x.arbiterCycles + x.hops * x.hopCycles + 1)
        * x.cyclePeriod;
    const net::LinkParams &l = cfg_.link;
    const Tick linkFloor =
        static_cast<Tick>(l.ctrlCycles) * l.cyclePeriod + l.flightTicks;
    return srcXbar + linkFloor;
}

std::uint64_t
Machine::executedEvents() const
{
    std::uint64_t total = 0;
    for (const auto &s : shards_)
        total += s->eq.executed();
    return total;
}

std::size_t
Machine::pendingEvents() const
{
    std::size_t total = 0;
    for (const auto &s : shards_) {
        total += s->eq.pending();
        total += s->outbox.size();
    }
    return total;
}

Tick
Machine::maxNow() const
{
    Tick t = 0;
    for (const auto &s : shards_)
        t = std::max(t, s->eq.now());
    return t;
}

void
Machine::mergeShardStats()
{
    if (statsMerged_)
        return;
    statsMerged_ = true;
    for (std::size_t s = 1; s < shards_.size(); ++s) {
        shards_[0]->stats += shards_[s]->stats;
        shards_[s]->stats.reset();
    }
}

Tick
Machine::routeMessage(Tick start, UnitId from, UnitId to,
                      std::uint32_t bits)
{
    if (from == to)
        return xbar(from).transfer(start, bits);

    Tick t = xbar(from).transfer(start, bits);
    t = links_->send(t, from, to, (bits + 7) / 8);
    return xbar(to).transfer(t, bits);
}

Tick
Machine::memoryAccess(Tick start, UnitId from, Addr addr, bool isWrite,
                      std::uint32_t bytes)
{
    const UnitId home = mem::unitOfAddr(addr);
    SYNCRON_ASSERT(home < cfg_.numUnits,
                   "access to address outside the system: " << addr);

    // Request carries the write data; the response carries read data.
    const std::uint32_t reqBits =
        kMemReqHeaderBits + (isWrite ? bytes * 8 : 0);
    const std::uint32_t respBits =
        kMemRespHeaderBits + (isWrite ? 0 : bytes * 8);

    Tick t = routeMessage(start, from, home, reqBits);
    t = dram(home).access(t, addr, isWrite, bytes);
    return routeMessage(t, home, from, respBits);
}

void
Machine::postMessage(Tick start, UnitId from, UnitId to,
                     std::uint32_t bits, Callback cont)
{
    if (from == to) {
        const Tick t = xbar(from).transfer(start, bits);
        eq(from).schedule(t, std::move(cont));
        return;
    }
    if (!mailboxActive_) {
        // Zero-lookahead fallback: single shard, synchronous transport.
        const Tick t = routeMessage(start, from, to, bits);
        eq(to).schedule(t, std::move(cont));
        return;
    }
    // Source-side legs run synchronously on the caller's shard (it owns
    // both the source crossbar and every (from, *) link direction); the
    // destination crossbar is paid by deliverEnvelope() on the owning
    // shard at the stamped arrival.
    Tick t = xbar(from).transfer(start, bits);
    t = links_->send(t, from, to, (bits + 7) / 8);
    Shard &src = *shards_[shardOf(from)];
    src.outbox.push_back(Envelope{t, bits, to, from, unitSeq_[from]++,
                                  std::move(cont)});
}

void
Machine::memoryAccessAsync(Tick start, UnitId from, Addr addr,
                           bool isWrite, std::uint32_t bytes,
                           Callback onDone)
{
    const UnitId home = mem::unitOfAddr(addr);
    SYNCRON_ASSERT(home < cfg_.numUnits,
                   "access to address outside the system: " << addr);
    if (home == from || !mailboxActive_) {
        const Tick done = memoryAccess(start, from, addr, isWrite, bytes);
        eq(from).schedule(done, std::move(onDone));
        return;
    }
    // Park the completion callback at the requester's shard and thread
    // its slot index through both envelopes — nesting the callback
    // itself would overflow the inline-callback bound.
    const std::uint32_t pend =
        parkMemCallback(*shards_[shardOf(from)], std::move(onDone));
    const std::uint32_t reqBits =
        kMemReqHeaderBits + (isWrite ? bytes * 8 : 0);
    postMessage(start, from, home, reqBits,
                [this, addr, isWrite, bytes, from, pend] {
                    const UnitId h = mem::unitOfAddr(addr);
                    const Tick t = dram(h).access(eq(h).now(), addr,
                                                  isWrite, bytes);
                    const std::uint32_t respBits =
                        kMemRespHeaderBits + (isWrite ? 0 : bytes * 8);
                    postMessage(t, h, from, respBits, [this, from, pend] {
                        completeMemOp(from, pend);
                    });
                });
}

void
Machine::memoryAccessDetached(Tick start, UnitId from, Addr addr,
                              bool isWrite, std::uint32_t bytes)
{
    const UnitId home = mem::unitOfAddr(addr);
    SYNCRON_ASSERT(home < cfg_.numUnits,
                   "access to address outside the system: " << addr);
    if (home == from || !mailboxActive_) {
        memoryAccess(start, from, addr, isWrite, bytes);
        return;
    }
    const std::uint32_t reqBits =
        kMemReqHeaderBits + (isWrite ? bytes * 8 : 0);
    postMessage(start, from, home, reqBits,
                [this, addr, isWrite, bytes, from] {
                    const UnitId h = mem::unitOfAddr(addr);
                    const Tick t = dram(h).access(eq(h).now(), addr,
                                                  isWrite, bytes);
                    const std::uint32_t respBits =
                        kMemRespHeaderBits + (isWrite ? 0 : bytes * 8);
                    // The response still occupies the path home -> from.
                    postMessage(t, h, from, respBits, [] {});
                });
}

std::uint32_t
Machine::allocInflight(Shard &shard, Envelope env)
{
    if (!shard.inflightFree.empty()) {
        const std::uint32_t idx = shard.inflightFree.back();
        shard.inflightFree.pop_back();
        shard.inflight[idx] = std::move(env);
        return idx;
    }
    shard.inflight.push_back(std::move(env));
    return static_cast<std::uint32_t>(shard.inflight.size() - 1);
}

void
Machine::deliverEnvelope(unsigned shard, std::uint32_t idx)
{
    Shard &sh = *shards_[shard];
    Envelope env = std::move(sh.inflight[idx]);
    sh.inflightFree.push_back(idx);
    // The envelope's stamp is the link arrival; the destination-crossbar
    // traversal happens now, on the owning shard.
    const Tick t = xbar(env.to).transfer(sh.eq.now(), env.bits);
    sh.eq.schedule(t, std::move(env.cont));
}

std::uint32_t
Machine::parkMemCallback(Shard &shard, Callback cb)
{
    if (!shard.memPendingFree.empty()) {
        const std::uint32_t idx = shard.memPendingFree.back();
        shard.memPendingFree.pop_back();
        shard.memPending[idx] = std::move(cb);
        return idx;
    }
    shard.memPending.push_back(std::move(cb));
    return static_cast<std::uint32_t>(shard.memPending.size() - 1);
}

void
Machine::completeMemOp(UnitId requester, std::uint32_t idx)
{
    Shard &sh = *shards_[shardOf(requester)];
    Callback cb = std::move(sh.memPending[idx]);
    sh.memPendingFree.push_back(idx);
    cb();
}

void
Machine::drainMailboxes()
{
    // Gather every shard's outbox, order by (arrival, source unit,
    // per-unit sequence) — a total order independent of the shard
    // count — and schedule one delivery event per envelope. Runs only
    // at window barriers, so touching every queue is safe.
    std::vector<Envelope> batch;
    for (auto &s : shards_) {
        if (batch.empty())
            batch = std::move(s->outbox);
        else
            for (auto &env : s->outbox)
                batch.push_back(std::move(env));
        s->outbox.clear();
    }
    if (batch.empty())
        return;
    std::sort(batch.begin(), batch.end(),
              [](const Envelope &a, const Envelope &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.srcUnit != b.srcUnit)
                      return a.srcUnit < b.srcUnit;
                  return a.seq < b.seq;
              });
    for (auto &env : batch) {
        const unsigned destShard = shardOf(env.to);
        Shard &sh = *shards_[destShard];
        const Tick when = env.when;
        SYNCRON_ASSERT(when >= sh.eq.now(),
                       "mailbox envelope arrived in the past: " << when
                           << " < " << sh.eq.now());
        const std::uint32_t idx = allocInflight(sh, std::move(env));
        sh.eq.schedule(when, [this, destShard, idx] {
            deliverEnvelope(destShard, idx);
        });
    }
}

} // namespace syncron
