#include "system/system.hh"

#include <iostream>
#include <sstream>

#include "analysis/live.hh"
#include "common/log.hh"
#include "durability/backend.hh"
#include "durability/manager.hh"
#include "sync/registry.hh"
#include "trace/capture.hh"
#include "trace/format.hh"

namespace syncron {

NdpSystem::NdpSystem(const SystemConfig &cfg)
    : machine_(std::make_unique<Machine>(cfg))
{
    // Backend selection is fully name-driven: the registry instantiates
    // whatever backend is registered under the configured name (by
    // default the scheme's canonical name), so new schemes plug in
    // without touching this file.
    const SystemConfig &conf = machine_->config();
    const std::string name = conf.backendName.empty()
                                 ? schemeName(conf.scheme)
                                 : conf.backendName;
    backend_ = sync::BackendRegistry::instance().create(name, *machine_);
    engineView_ = dynamic_cast<engine::SynCronBackend *>(backend_.get());
    if (conf.persistMode != durability::PersistMode::Off) {
        durability_ =
            std::make_unique<durability::DurabilityManager>(*machine_);
        // SE-based backends mirror station state transitions into the
        // PM path; backends with no engine (Central et al.) are covered
        // by the WAL observer + (in Eager mode) the decorator below.
        if (engineView_ != nullptr)
            engineView_->setPersistHook(durability_.get());
        if (conf.persistMode == durability::PersistMode::Eager) {
            // Eager: every acquire-type request pays the PM write
            // before the backend may service it.
            backend_ = std::make_unique<durability::PersistingBackend>(
                std::move(backend_), *machine_, *durability_);
        }
    }
    api_ = std::make_unique<sync::SyncApi>(*machine_, *backend_);
    if (!conf.tracePath.empty()) {
        capture_ = std::make_unique<trace::TraceCapture>(conf);
        api_->setTraceSink(capture_.get());
    }
    if (conf.analyze) {
        analyzer_ = std::make_unique<analysis::LiveAnalyzer>(conf);
        api_->setObserver(analyzer_.get());
    }
    if (durability_ != nullptr)
        api_->addAuxObserver(durability_.get());

    const SystemConfig &c = machine_->config();
    cores_.reserve(c.totalClientCores());
    for (unsigned u = 0; u < c.numUnits; ++u) {
        for (unsigned l = 0; l < c.clientCoresPerUnit; ++l) {
            // Core-ID layout contract: see
            // SystemConfig::denseClientIndex(), which inverts this.
            const CoreId id = u * c.coresPerUnit + l;
            cores_.push_back(
                std::make_unique<core::Core>(*machine_, id, u, l));
        }
    }
}

NdpSystem::~NdpSystem() = default;

unsigned
NdpSystem::numClientCores() const
{
    return static_cast<unsigned>(cores_.size());
}

core::Core &
NdpSystem::clientCore(unsigned idx)
{
    SYNCRON_ASSERT(idx < cores_.size(), "client core index out of range: "
                                            << idx);
    return *cores_[idx];
}

void
NdpSystem::spawn(sim::Process process)
{
    process.start(machine_->eq());
    processes_.push_back(std::move(process));
}

void
NdpSystem::run()
{
    const SystemConfig &cfg = machine_->config();
    if (cfg.crashAtTick != 0) {
        machine_->eq().run(cfg.crashAtTick);
        bool pending = false;
        for (const sim::Process &p : processes_) {
            if (!p.done()) {
                pending = true;
                break;
            }
        }
        if (pending) {
            // The injected crash fired mid-run: tear the machine down
            // where it stands. Nothing past the crash tick happened —
            // no trace writeout, no analysis, no stat finalization;
            // only the durability manager's persisted image survives.
            machine_->markCrashed();
            if (durability_ != nullptr)
                durability_->noteCrash(machine_->eq().now());
            return;
        }
        // The run finished before the crash tick; fall through to the
        // normal end-of-run path.
    } else {
        machine_->eq().run();
    }
    for (const sim::Process &p : processes_) {
        if (!p.done()) {
            SYNCRON_FATAL(
                "deadlock: event queue drained with "
                << processes_.size()
                << " processes spawned but at least one still blocked "
                   "(scheme "
                << backend_->name() << ")");
        }
    }
    if (engineView_ != nullptr)
        engineView_->finalizeStats();
    if (durability_ != nullptr)
        durability_->shutdownFlush();
    if (capture_ != nullptr)
        trace::writeTraceFile(capture_->trace(),
                              machine_->config().tracePath);
    if (analyzer_ != nullptr && !analyzer_->finished()) {
        const analysis::AnalysisReport &report = analyzer_->finish();
        if (!report.clean()) {
            std::ostringstream os;
            report.print(os);
            if (machine_->config().analyzeFatal) {
                SYNCRON_FATAL("sync-correctness analysis failed:\n"
                              << os.str());
            }
            std::cerr << os.str();
        }
    }
}

Tick
NdpSystem::elapsed() const
{
    return machine_->eq().now();
}

} // namespace syncron
