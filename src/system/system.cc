#include "system/system.hh"

#include <iostream>
#include <sstream>

#include "analysis/live.hh"
#include "common/log.hh"
#include "sync/registry.hh"
#include "trace/capture.hh"
#include "trace/format.hh"

namespace syncron {

NdpSystem::NdpSystem(const SystemConfig &cfg)
    : machine_(std::make_unique<Machine>(cfg))
{
    // Backend selection is fully name-driven: the registry instantiates
    // whatever backend is registered under the configured name (by
    // default the scheme's canonical name), so new schemes plug in
    // without touching this file.
    const SystemConfig &conf = machine_->config();
    const std::string name = conf.backendName.empty()
                                 ? schemeName(conf.scheme)
                                 : conf.backendName;
    backend_ = sync::BackendRegistry::instance().create(name, *machine_);
    engineView_ = dynamic_cast<engine::SynCronBackend *>(backend_.get());
    api_ = std::make_unique<sync::SyncApi>(*machine_, *backend_);
    if (!conf.tracePath.empty()) {
        capture_ = std::make_unique<trace::TraceCapture>(conf);
        api_->setTraceSink(capture_.get());
    }
    if (conf.analyze) {
        analyzer_ = std::make_unique<analysis::LiveAnalyzer>(conf);
        api_->setObserver(analyzer_.get());
    }

    const SystemConfig &c = machine_->config();
    cores_.reserve(c.totalClientCores());
    for (unsigned u = 0; u < c.numUnits; ++u) {
        for (unsigned l = 0; l < c.clientCoresPerUnit; ++l) {
            // Core-ID layout contract: see
            // SystemConfig::denseClientIndex(), which inverts this.
            const CoreId id = u * c.coresPerUnit + l;
            cores_.push_back(
                std::make_unique<core::Core>(*machine_, id, u, l));
        }
    }
}

NdpSystem::~NdpSystem() = default;

unsigned
NdpSystem::numClientCores() const
{
    return static_cast<unsigned>(cores_.size());
}

core::Core &
NdpSystem::clientCore(unsigned idx)
{
    SYNCRON_ASSERT(idx < cores_.size(), "client core index out of range: "
                                            << idx);
    return *cores_[idx];
}

void
NdpSystem::spawn(sim::Process process)
{
    process.start(machine_->eq());
    processes_.push_back(std::move(process));
}

void
NdpSystem::run()
{
    machine_->eq().run();
    for (const sim::Process &p : processes_) {
        if (!p.done()) {
            SYNCRON_FATAL(
                "deadlock: event queue drained with "
                << processes_.size()
                << " processes spawned but at least one still blocked "
                   "(scheme "
                << backend_->name() << ")");
        }
    }
    if (engineView_ != nullptr)
        engineView_->finalizeStats();
    if (capture_ != nullptr)
        trace::writeTraceFile(capture_->trace(),
                              machine_->config().tracePath);
    if (analyzer_ != nullptr && !analyzer_->finished()) {
        const analysis::AnalysisReport &report = analyzer_->finish();
        if (!report.clean()) {
            std::ostringstream os;
            report.print(os);
            if (machine_->config().analyzeFatal) {
                SYNCRON_FATAL("sync-correctness analysis failed:\n"
                              << os.str());
            }
            std::cerr << os.str();
        }
    }
}

Tick
NdpSystem::elapsed() const
{
    return machine_->eq().now();
}

} // namespace syncron
