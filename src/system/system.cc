#include "system/system.hh"

#include "baselines/central.hh"
#include "baselines/flat.hh"
#include "baselines/hier.hh"
#include "baselines/ideal.hh"
#include "baselines/misar_overflow.hh"
#include "common/log.hh"

namespace syncron {

namespace {

std::unique_ptr<sync::SyncBackend>
makeBackend(Machine &machine)
{
    switch (machine.config().scheme) {
      case Scheme::Ideal:
        return std::make_unique<baselines::IdealBackend>(machine);
      case Scheme::Central:
        return std::make_unique<baselines::CentralBackend>(machine);
      case Scheme::Hier:
        return std::make_unique<baselines::HierBackend>(machine);
      case Scheme::SynCron:
        return std::make_unique<engine::SynCronBackend>(machine);
      case Scheme::SynCronFlat:
        return std::make_unique<baselines::FlatSynCronBackend>(machine);
      case Scheme::SynCronCentralOvrfl:
        return std::make_unique<baselines::CentralOvrflBackend>(machine);
      case Scheme::SynCronDistribOvrfl:
        return std::make_unique<baselines::DistribOvrflBackend>(machine);
    }
    SYNCRON_PANIC("unknown scheme");
}

} // namespace

NdpSystem::NdpSystem(const SystemConfig &cfg)
    : machine_(std::make_unique<Machine>(cfg))
{
    backend_ = makeBackend(*machine_);
    engineView_ = dynamic_cast<engine::SynCronBackend *>(backend_.get());
    api_ = std::make_unique<sync::SyncApi>(*machine_, *backend_);

    const SystemConfig &c = machine_->config();
    cores_.reserve(c.totalClientCores());
    for (unsigned u = 0; u < c.numUnits; ++u) {
        for (unsigned l = 0; l < c.clientCoresPerUnit; ++l) {
            const CoreId id = u * c.coresPerUnit + l;
            cores_.push_back(
                std::make_unique<core::Core>(*machine_, id, u, l));
        }
    }
}

NdpSystem::~NdpSystem() = default;

unsigned
NdpSystem::numClientCores() const
{
    return static_cast<unsigned>(cores_.size());
}

core::Core &
NdpSystem::clientCore(unsigned idx)
{
    SYNCRON_ASSERT(idx < cores_.size(), "client core index out of range: "
                                            << idx);
    return *cores_[idx];
}

void
NdpSystem::spawn(sim::Process process)
{
    process.start(machine_->eq());
    processes_.push_back(std::move(process));
}

void
NdpSystem::run()
{
    machine_->eq().run();
    for (const sim::Process &p : processes_) {
        if (!p.done()) {
            SYNCRON_FATAL(
                "deadlock: event queue drained with "
                << processes_.size()
                << " processes spawned but at least one still blocked "
                   "(scheme "
                << backend_->name() << ")");
        }
    }
    if (engineView_ != nullptr)
        engineView_->finalizeStats();
}

Tick
NdpSystem::elapsed() const
{
    return machine_->eq().now();
}

} // namespace syncron
