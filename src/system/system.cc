#include "system/system.hh"

#include <iostream>
#include <sstream>

#include "analysis/live.hh"
#include "analysis/sharded_observer.hh"
#include "common/log.hh"
#include "durability/backend.hh"
#include "durability/manager.hh"
#include "sim/sharded_kernel.hh"
#include "sync/registry.hh"
#include "trace/capture.hh"
#include "trace/format.hh"
#include "tracenet/stream_sink.hh"

namespace syncron {

namespace {

/**
 * Collapses SystemConfig::simShards to 1 when the selected backend has
 * not been declared shard-safe (see BackendRegistry::add). Resolved
 * before the Machine is built because the shard topology is fixed at
 * machine construction, while the backend is only instantiated after.
 */
SystemConfig
resolveSimShards(SystemConfig cfg)
{
    if (cfg.simShards > 1) {
        const std::string name = cfg.backendName.empty()
                                     ? schemeName(cfg.scheme)
                                     : cfg.backendName;
        if (!sync::BackendRegistry::instance().shardable(name))
            cfg.simShards = 1;
    }
    return cfg;
}

} // namespace

NdpSystem::NdpSystem(const SystemConfig &cfg)
    : machine_(std::make_unique<Machine>(resolveSimShards(cfg)))
{
    // Backend selection is fully name-driven: the registry instantiates
    // whatever backend is registered under the configured name (by
    // default the scheme's canonical name), so new schemes plug in
    // without touching this file.
    const SystemConfig &conf = machine_->config();
    const std::string name = conf.backendName.empty()
                                 ? schemeName(conf.scheme)
                                 : conf.backendName;
    backend_ = sync::BackendRegistry::instance().create(name, *machine_);
    engineView_ = dynamic_cast<engine::SynCronBackend *>(backend_.get());
    if (conf.persistMode != durability::PersistMode::Off) {
        durability_ =
            std::make_unique<durability::DurabilityManager>(*machine_);
        // SE-based backends mirror station state transitions into the
        // PM path; backends with no engine (Central et al.) are covered
        // by the WAL observer + (in Eager mode) the decorator below.
        if (engineView_ != nullptr)
            engineView_->setPersistHook(durability_.get());
        if (conf.persistMode == durability::PersistMode::Eager) {
            // Eager: every acquire-type request pays the PM write
            // before the backend may service it.
            backend_ = std::make_unique<durability::PersistingBackend>(
                std::move(backend_), *machine_, *durability_);
        }
    }
    api_ = std::make_unique<sync::SyncApi>(*machine_, *backend_);
    if (!conf.traceStream.empty()) {
        // Streaming capture: the sink owns the (complete) local
        // capture and mirrors it to the collector; the collector names
        // its output file after the local capture path when one is set.
        std::string streamName = "stream.trc";
        if (!conf.tracePath.empty()) {
            const std::size_t slash = conf.tracePath.rfind('/');
            streamName = slash == std::string::npos
                             ? conf.tracePath
                             : conf.tracePath.substr(slash + 1);
        }
        streamSink_ = std::make_unique<tracenet::StreamingTraceSink>(
            conf, conf.traceStream, streamName, tracenet::RetryPolicy{});
        api_->setTraceSink(streamSink_.get());
    } else if (!conf.tracePath.empty()) {
        capture_ = std::make_unique<trace::TraceCapture>(conf);
        api_->setTraceSink(capture_.get());
    }
    if (conf.analyze) {
        analyzer_ = std::make_unique<analysis::LiveAnalyzer>(conf);
        if (machine_->numShards() > 1) {
            // Worker threads must not drive the analyzer's state machine
            // directly: buffer per shard, replay at quiescence.
            shardedObs_ = std::make_unique<analysis::ShardedObserver>(
                *machine_, *analyzer_);
            api_->setObserver(shardedObs_.get());
        } else {
            api_->setObserver(analyzer_.get());
        }
    }
    if (durability_ != nullptr)
        api_->addAuxObserver(durability_.get());

    const SystemConfig &c = machine_->config();
    cores_.reserve(c.totalClientCores());
    for (unsigned u = 0; u < c.numUnits; ++u) {
        for (unsigned l = 0; l < c.clientCoresPerUnit; ++l) {
            // Core-ID layout contract: see
            // SystemConfig::denseClientIndex(), which inverts this.
            const CoreId id = u * c.coresPerUnit + l;
            cores_.push_back(
                std::make_unique<core::Core>(*machine_, id, u, l));
        }
    }
}

NdpSystem::~NdpSystem() = default;

trace::TraceCapture *
NdpSystem::traceCapture()
{
    if (streamSink_ != nullptr) {
        // The streaming sink's capture is logically ours; expose it
        // through the same accessor so bench/report plumbing that
        // inspects the capture works unchanged under --trace-stream.
        return &streamSink_->capture();
    }
    return capture_.get();
}

unsigned
NdpSystem::numClientCores() const
{
    return static_cast<unsigned>(cores_.size());
}

core::Core &
NdpSystem::clientCore(unsigned idx)
{
    SYNCRON_ASSERT(idx < cores_.size(), "client core index out of range: "
                                            << idx);
    return *cores_[idx];
}

void
NdpSystem::spawn(sim::Process process)
{
    SYNCRON_ASSERT(machine_->numShards() == 1,
                   "spawn(process) without a core on a sharded machine — "
                   "use spawn(process, core) so the coroutine is homed on "
                   "its core's shard");
    process.start(machine_->eq());
    processes_.push_back(std::move(process));
}

void
NdpSystem::spawn(sim::Process process, const core::Core &core)
{
    process.start(machine_->eq(core.unit()));
    processes_.push_back(std::move(process));
}

void
NdpSystem::run()
{
    const SystemConfig &cfg = machine_->config();
    sim::ShardedKernel kernel(machine_->shardQueues(),
                              machine_->lookahead(), *machine_);
    if (cfg.crashAtTick != 0) {
        kernel.run(cfg.crashAtTick);
        bool pending = false;
        for (const sim::Process &p : processes_) {
            if (!p.done()) {
                pending = true;
                break;
            }
        }
        if (pending) {
            // The injected crash fired mid-run: tear the machine down
            // where it stands. Nothing past the crash tick happened —
            // no trace writeout, no analysis, no stat finalization;
            // only the durability manager's persisted image survives.
            machine_->markCrashed();
            if (durability_ != nullptr)
                durability_->noteCrash(machine_->eq().now());
            return;
        }
        // The run finished before the crash tick; fall through to the
        // normal end-of-run path.
    } else {
        kernel.run();
    }
    for (const sim::Process &p : processes_) {
        if (!p.done()) {
            SYNCRON_FATAL(
                "deadlock: event queue drained with "
                << processes_.size()
                << " processes spawned but at least one still blocked "
                   "(scheme "
                << backend_->name() << ")");
        }
    }
    if (engineView_ != nullptr)
        engineView_->finalizeStats();
    machine_->mergeShardStats();
    if (durability_ != nullptr)
        durability_->shutdownFlush();
    if (streamSink_ != nullptr) {
        const bool streamed = streamSink_->finish();
        const trace::Trace &t = streamSink_->capture().trace();
        if (!cfg.tracePath.empty()) {
            // A requested local file is written regardless of how the
            // stream fared — the collector copy is a mirror, not a
            // replacement.
            trace::writeTraceFile(t, cfg.tracePath);
        } else if (!streamed) {
            // Degradation: the stream died and no local path was
            // requested; the capture is complete, so keep it.
            const std::string fallback = "trace_stream_fallback.trc";
            trace::writeTraceFile(t, fallback);
            SYNCRON_WARN("trace stream failed; wrote local fallback "
                         << fallback);
        }
    } else if (capture_ != nullptr) {
        trace::writeTraceFile(capture_->trace(),
                              machine_->config().tracePath);
    }
    if (shardedObs_ != nullptr)
        shardedObs_->flush();
    if (analyzer_ != nullptr && !analyzer_->finished()) {
        const analysis::AnalysisReport &report = analyzer_->finish();
        if (!report.clean()) {
            std::ostringstream os;
            report.print(os);
            if (machine_->config().analyzeFatal) {
                SYNCRON_FATAL("sync-correctness analysis failed:\n"
                              << os.str());
            }
            std::cerr << os.str();
        }
    }
}

Tick
NdpSystem::elapsed() const
{
    return machine_->maxNow();
}

} // namespace syncron
