/**
 * @file
 * Energy model: converts the event counts in SystemStats into the
 * cache/network/memory energy breakdown of the paper's Fig. 14, using
 * the per-event costs of Table 5 (CACTI-derived cache energies, network
 * pJ/bit-hop, link pJ/bit, DRAM pJ/bit).
 */

#ifndef SYNCRON_SYSTEM_ENERGY_HH
#define SYNCRON_SYSTEM_ENERGY_HH

#include "common/stats.hh"
#include "system/config.hh"

namespace syncron {

/** Energy in joules per Fig. 14 category. */
struct EnergyBreakdown
{
    double cacheJ = 0.0;
    double networkJ = 0.0;
    double memoryJ = 0.0;
    double pmJ = 0.0; ///< durability: persisted writes to the PM domain

    double total() const { return cacheJ + networkJ + memoryJ + pmJ; }
};

/** Computes the breakdown from event counts and configuration. */
EnergyBreakdown computeEnergy(const SystemStats &stats,
                              const SystemConfig &cfg);

} // namespace syncron

#endif // SYNCRON_SYSTEM_ENERGY_HH
