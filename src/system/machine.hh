/**
 * @file
 * The simulated hardware platform: event queue, statistics, per-unit
 * crossbars and DRAM, inter-unit links, and the shared address space.
 *
 * Machine provides the two composite operations every agent (core, SE,
 * server core) uses:
 *   - routeMessage(): deliver a message between (possibly different)
 *     units through crossbar [+ link + crossbar];
 *   - memoryAccess(): a full uncached memory transaction — request
 *     message, DRAM access at the owning unit, response message.
 */

#ifndef SYNCRON_SYSTEM_MACHINE_HH
#define SYNCRON_SYSTEM_MACHINE_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/allocator.hh"
#include "mem/dram.hh"
#include "net/crossbar.hh"
#include "net/link.hh"
#include "sim/event_queue.hh"
#include "system/config.hh"

namespace syncron {

/** Bits in a request message header (command + address + ids). */
constexpr std::uint32_t kMemReqHeaderBits = 80;

/** Bits in a response message header. */
constexpr std::uint32_t kMemRespHeaderBits = 16;

/** One simulated NDP platform instance. */
class Machine
{
  public:
    explicit Machine(const SystemConfig &cfg);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const SystemConfig &config() const { return cfg_; }
    sim::EventQueue &eq() { return eq_; }
    SystemStats &stats() { return stats_; }
    const SystemStats &stats() const { return stats_; }
    mem::AddressSpace &addrSpace() { return addrSpace_; }

    net::Crossbar &xbar(UnitId unit);
    mem::Dram &dram(UnitId unit);
    net::LinkFabric &links() { return *links_; }

    /**
     * Routes a @p bits -bit message from unit @p from to unit @p to,
     * starting at @p start. Same-unit messages traverse only the local
     * crossbar; cross-unit messages traverse source crossbar, serial
     * link, and destination crossbar.
     *
     * @return absolute arrival tick
     */
    Tick routeMessage(Tick start, UnitId from, UnitId to,
                      std::uint32_t bits);

    /**
     * Performs a complete uncached memory transaction issued by an agent
     * in unit @p from to address @p addr (request + DRAM + response).
     *
     * @return absolute tick at which the response reaches the requester
     */
    Tick memoryAccess(Tick start, UnitId from, Addr addr, bool isWrite,
                      std::uint32_t bytes);

    // -- Crash injection (durability) ----------------------------------
    /** Marks the machine torn down mid-run by the crash injector. */
    void markCrashed() { crashed_ = true; }

    /** True once the crash injector tore the machine down. */
    bool crashed() const { return crashed_; }

  private:
    SystemConfig cfg_;
    bool crashed_ = false;
    sim::EventQueue eq_;
    SystemStats stats_;
    mem::AddressSpace addrSpace_;
    std::vector<std::unique_ptr<net::Crossbar>> xbars_;
    std::vector<std::unique_ptr<mem::Dram>> drams_;
    std::unique_ptr<net::LinkFabric> links_;
};

} // namespace syncron

#endif // SYNCRON_SYSTEM_MACHINE_HH
