/**
 * @file
 * The simulated hardware platform: event queue(s), statistics, per-unit
 * crossbars and DRAM, inter-unit links, and the shared address space.
 *
 * Machine provides the two composite operations every agent (core, SE,
 * server core) uses:
 *   - routeMessage(): deliver a message between (possibly different)
 *     units through crossbar [+ link + crossbar];
 *   - memoryAccess(): a full uncached memory transaction — request
 *     message, DRAM access at the owning unit, response message.
 *
 * Sharded simulation (SystemConfig::simShards): units are split into
 * contiguous blocks, one per shard, each owning a private EventQueue and
 * SystemStats block so shards can run on separate host threads
 * (sim/sharded_kernel.hh). The synchronous routeMessage()/memoryAccess()
 * above stay valid only within one unit (or at one shard); sharded-aware
 * agents use the asynchronous forms — postMessage() /
 * memoryAccessAsync() — whose cross-unit leg is a mailbox envelope
 * stamped with the earliest-arrival tick and delivered at the next
 * window barrier. The mailbox discipline is active at EVERY shard count
 * (including 1) whenever the lookahead is non-zero, so a sharded run
 * replays exactly the same per-unit event order as a single-threaded one
 * — that is the bit-identity contract the sharded tests enforce.
 */

#ifndef SYNCRON_SYSTEM_MACHINE_HH
#define SYNCRON_SYSTEM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/allocator.hh"
#include "mem/dram.hh"
#include "net/crossbar.hh"
#include "net/link.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_kernel.hh"
#include "system/config.hh"

namespace syncron {

/** Bits in a request message header (command + address + ids). */
constexpr std::uint32_t kMemReqHeaderBits = 80;

/** Bits in a response message header. */
constexpr std::uint32_t kMemRespHeaderBits = 16;

/** One simulated NDP platform instance. */
class Machine : public sim::ShardedKernel::Client
{
  public:
    using Callback = sim::EventQueue::Callback;

    explicit Machine(const SystemConfig &cfg);
    ~Machine() override;

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const SystemConfig &config() const { return cfg_; }

    /** Shard 0's queue — the only queue when the machine is unsharded.
     *  Callers that hold a unit should prefer eq(unit). */
    sim::EventQueue &eq() { return shards_[0]->eq; }

    /** The event queue owning @p unit — all of that unit's activity
     *  (device callbacks, core resumes, gate opens) must run here. */
    sim::EventQueue &eq(UnitId unit) { return shards_[shardOf(unit)]->eq; }

    /** Shard 0's stats block (= the merged totals after the run —
     *  NdpSystem folds the other shards in at teardown). */
    SystemStats &stats() { return shards_[0]->stats; }
    const SystemStats &stats() const { return shards_[0]->stats; }

    /** The stats block activity of @p unit must be charged to. */
    SystemStats &statsFor(UnitId unit)
    {
        return shards_[shardOf(unit)]->stats;
    }

    mem::AddressSpace &addrSpace() { return addrSpace_; }

    net::Crossbar &xbar(UnitId unit);
    mem::Dram &dram(UnitId unit);
    net::LinkFabric &links() { return *links_; }

    // -- Shard topology ------------------------------------------------
    /** Number of shards actually materialized (after clamping). */
    unsigned numShards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Shard owning @p unit (contiguous unit blocks). */
    unsigned shardOf(UnitId unit) const { return unit / unitsPerShard_; }

    /** The per-shard queues, for the ShardedKernel coordinator. */
    std::vector<sim::EventQueue *> shardQueues();

    /**
     * Conservative PDES lookahead: the minimum number of ticks any
     * cross-unit message needs (source crossbar floor + link controller
     * + flight). Envelopes are always stamped at least this far in the
     * future, which is what makes parallel windows safe.
     */
    Tick lookahead() const;

    /** True when cross-unit traffic goes through mailbox envelopes
     *  (lookahead > 0). False only on zero-latency sweeps, which run
     *  single-shard with the synchronous path. */
    bool mailboxActive() const { return mailboxActive_; }

    /** Sum of executed events across all shard queues (host perf). */
    std::uint64_t executedEvents() const;

    /** Sum of pending events across all shard queues + mailboxes. */
    std::size_t pendingEvents() const;

    /** Max now() across shard queues. */
    Tick maxNow() const;

    /**
     * Folds every shard's stats block into shard 0 (exact: all counters
     * are integers) and zeroes the others. Idempotent; called by
     * NdpSystem once the run ends.
     */
    void mergeShardStats();

    /** True while a parallel window is in flight on worker threads.
     *  Quiescent-only operations (primitive alloc/destroy, idleVar
     *  sweeps) assert this is false. */
    bool inParallelRegion() const { return inParallelRegion_; }

    // -- Synchronous transport (single-unit / single-shard callers) ----
    /**
     * Routes a @p bits -bit message from unit @p from to unit @p to,
     * starting at @p start. Same-unit messages traverse only the local
     * crossbar; cross-unit messages traverse source crossbar, serial
     * link, and destination crossbar.
     *
     * Cross-unit use requires both units on the same shard (single-shard
     * machines, or unit-local agents): it touches the destination
     * crossbar synchronously.
     *
     * @return absolute arrival tick
     */
    Tick routeMessage(Tick start, UnitId from, UnitId to,
                      std::uint32_t bits);

    /**
     * Performs a complete uncached memory transaction issued by an agent
     * in unit @p from to address @p addr (request + DRAM + response).
     * Same shard-locality caveat as routeMessage().
     *
     * @return absolute tick at which the response reaches the requester
     */
    Tick memoryAccess(Tick start, UnitId from, Addr addr, bool isWrite,
                      std::uint32_t bytes);

    // -- Asynchronous transport (shard-safe) ---------------------------
    /**
     * Delivers a @p bits -bit message from @p from to @p to and runs
     * @p cont on @p to's shard at the arrival tick (after the
     * destination-crossbar traversal; read the arrival via
     * eq(to).now()). Same-unit messages schedule directly; cross-unit
     * messages become mailbox envelopes delivered at the next window
     * barrier. Must be called from @p from's shard.
     */
    void postMessage(Tick start, UnitId from, UnitId to,
                     std::uint32_t bits, Callback cont);

    /**
     * Asynchronous memoryAccess(): request message, DRAM access at the
     * owning unit, response message; runs @p onDone on @p from's shard
     * at the tick the response arrives (read it via eq(from).now()).
     */
    void memoryAccessAsync(Tick start, UnitId from, Addr addr,
                           bool isWrite, std::uint32_t bytes,
                           Callback onDone);

    /** Fire-and-forget memoryAccessAsync() — models the occupancy of an
     *  off-critical-path access (e.g. a cache victim writeback). */
    void memoryAccessDetached(Tick start, UnitId from, Addr addr,
                              bool isWrite, std::uint32_t bytes);

    // -- ShardedKernel::Client -----------------------------------------
    /** Delivers queued envelopes into destination queues, ordered by
     *  (arrival, source unit, source sequence) — deterministic and
     *  shard-count-invariant. Single-threaded (barrier time only). */
    void drainMailboxes() override;
    void windowBegin() override { inParallelRegion_ = true; }
    void windowEnd() override { inParallelRegion_ = false; }

    // -- Crash injection (durability) ----------------------------------
    /** Marks the machine torn down mid-run by the crash injector. */
    void markCrashed() { crashed_ = true; }

    /** True once the crash injector tore the machine down. */
    bool crashed() const { return crashed_; }

  private:
    /** Cross-shard message awaiting barrier delivery. */
    struct Envelope
    {
        Tick when = 0;          ///< earliest arrival at the dest unit
        std::uint32_t bits = 0; ///< pays the dest-crossbar traversal
        UnitId to = 0;
        UnitId srcUnit = 0;     ///< deterministic drain order key ...
        std::uint64_t seq = 0;  ///< ... (when, srcUnit, seq) is total
        Callback cont;
    };

    /** One shard: private queue + stats + mailbox storage. */
    struct Shard
    {
        sim::EventQueue eq;
        SystemStats stats;
        /// Envelopes posted by this shard's units, collected at barriers.
        std::vector<Envelope> outbox;
        /// Envelopes delivered to this shard, awaiting their event.
        std::vector<Envelope> inflight;
        std::vector<std::uint32_t> inflightFree;
        /// Parked completion callbacks for in-flight async memory ops
        /// issued by this shard's units (slot index rides the envelopes
        /// so nested captures never exceed the callback bound).
        std::vector<Callback> memPending;
        std::vector<std::uint32_t> memPendingFree;
    };

    std::uint32_t allocInflight(Shard &shard, Envelope env);
    void deliverEnvelope(unsigned shard, std::uint32_t idx);
    std::uint32_t parkMemCallback(Shard &shard, Callback cb);
    void completeMemOp(UnitId requester, std::uint32_t idx);

    SystemConfig cfg_;
    bool crashed_ = false;
    bool mailboxActive_ = false;
    bool inParallelRegion_ = false;
    bool statsMerged_ = false;
    unsigned unitsPerShard_ = 1;
    std::vector<std::unique_ptr<Shard>> shards_;
    /// Next envelope sequence number per source unit (only the owning
    /// shard's thread touches a given entry).
    std::vector<std::uint64_t> unitSeq_;
    mem::AddressSpace addrSpace_;
    std::vector<std::unique_ptr<net::Crossbar>> xbars_;
    std::vector<std::unique_ptr<mem::Dram>> drams_;
    std::unique_ptr<net::LinkFabric> links_;
};

} // namespace syncron

#endif // SYNCRON_SYSTEM_MACHINE_HH
