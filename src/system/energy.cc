#include "system/energy.hh"

#include "mem/dram.hh"

namespace syncron {

EnergyBreakdown
computeEnergy(const SystemStats &stats, const SystemConfig &cfg)
{
    constexpr double kPjToJ = 1e-12;
    EnergyBreakdown e;

    // Table 5: 23/47 pJ per L1 hit/miss.
    e.cacheJ = (static_cast<double>(stats.l1Hits) * cfg.l1HitPj
                + static_cast<double>(stats.l1Misses) * cfg.l1MissPj)
               * kPjToJ;

    // Table 5: 0.4 pJ/bit per crossbar hop; 4 pJ/bit on the links.
    e.networkJ = (static_cast<double>(stats.xbarBitHops)
                      * cfg.xbar.pjPerBitHop
                  + static_cast<double>(stats.linkBits)
                        * cfg.link.pjPerBit)
                 * kPjToJ;

    // DRAM accesses move whole lines; Table 5: 7 pJ/bit for HBM (scaled
    // per technology).
    const mem::DramParams dram = mem::DramParams::forTech(cfg.dramTech);
    const double dramBits =
        static_cast<double>(stats.dramReads + stats.dramWrites)
        * kCacheLineBytes * 8.0;
    e.memoryJ = dramBits * dram.pjPerBit * kPjToJ;

    // Durability: bits written through the modeled PM persist path.
    e.pmJ = static_cast<double>(stats.pmBitsWritten) * cfg.pm.pjPerBit
            * kPjToJ;

    return e;
}

} // namespace syncron
