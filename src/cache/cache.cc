#include "cache/cache.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace syncron::cache {

Cache::Cache(const CacheParams &params, SystemStats &stats)
    : params_(params), stats_(stats),
      numSets_(params.sizeBytes / (params.lineBytes * params.ways))
{
    SYNCRON_ASSERT(isPowerOfTwo(params_.lineBytes), "line size not pow2");
    SYNCRON_ASSERT(numSets_ >= 1 && isPowerOfTwo(numSets_),
                   "cache geometry must give a power-of-two set count");
    lines_.resize(static_cast<std::size_t>(numSets_) * params_.ways);
}

std::uint32_t
Cache::setOf(Addr addr) const
{
    return static_cast<std::uint32_t>(
        (addr / params_.lineBytes) & (numSets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / params_.lineBytes / numSets_;
}

CacheAccessResult
Cache::access(Addr addr, bool isWrite)
{
    const std::uint32_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.ways];

    // Hit path.
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++stamp_;
            line.dirty = line.dirty || isWrite;
            ++stats_.l1Hits;
            return CacheAccessResult{true, false, 0};
        }
    }

    // Miss: pick invalid way, else LRU.
    Line *victim = base;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lruStamp < victim->lruStamp)
            victim = &line;
    }

    CacheAccessResult res;
    res.hit = false;
    if (victim->valid && victim->dirty) {
        res.writeback = true;
        // Reconstruct the victim's line address from tag and set.
        res.victimAddr =
            (victim->tag * numSets_ + set) * params_.lineBytes;
    }

    victim->valid = true;
    victim->tag = tag;
    victim->dirty = isWrite;
    victim->lruStamp = ++stamp_;
    ++stats_.l1Misses;
    return res;
}

bool
Cache::contains(Addr addr) const
{
    const std::uint32_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines_[static_cast<std::size_t>(set) * params_.ways];
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

bool
Cache::invalidate(Addr addr)
{
    const std::uint32_t set = setOf(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.ways];
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            const bool wasDirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            return wasDirty;
        }
    }
    return false;
}

void
Cache::invalidateAll()
{
    for (Line &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
}

} // namespace syncron::cache
