/**
 * @file
 * Private L1 cache model (Table 5: 16 KB, 2-way, 64 B lines, 4-cycle,
 * 23/47 pJ per hit/miss).
 *
 * The model is a tag array with LRU replacement and write-back dirty
 * lines; data values live in workload shadow state, so only hit/miss and
 * victim-writeback outcomes are produced here. Timing (4-cycle hit, DRAM
 * fill on miss) is composed by the caller (core model or server core),
 * because the cost of a miss depends on where the line lives (local DRAM
 * vs. a remote NDP unit across a link).
 *
 * Under the software-assisted coherence of the baseline architecture
 * (Section 2.1), only thread-private and shared read-only data may be
 * cached; shared read-write data bypasses the L1 entirely. That policy is
 * enforced by the core model, not here. The MESI motivation experiments
 * (src/coherence) reuse this tag array with an invalidate() hook.
 */

#ifndef SYNCRON_CACHE_CACHE_HH
#define SYNCRON_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace syncron::cache {

/** Geometry/latency parameters of an L1 cache. */
struct CacheParams
{
    std::uint32_t sizeBytes = 16 * 1024; ///< Table 5: 16 KB
    std::uint32_t ways = 2;              ///< Table 5: 2-way
    std::uint32_t lineBytes = kCacheLineBytes;
    std::uint32_t hitCycles = 4;         ///< Table 5: 4-cycle (core cycles)
};

/** Outcome of a cache access; timing is composed by the caller. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false; ///< a dirty victim must be written back
    Addr victimAddr = 0;    ///< line address of the dirty victim
};

/** Set-associative write-back tag array with LRU replacement. */
class Cache
{
  public:
    Cache(const CacheParams &params, SystemStats &stats);

    /**
     * Looks up @p addr, allocating on miss (and evicting LRU).
     * @param isWrite marks the line dirty on a store
     */
    CacheAccessResult access(Addr addr, bool isWrite);

    /** True if the line containing @p addr is present (no side effects). */
    bool contains(Addr addr) const;

    /**
     * Removes the line containing @p addr if present.
     * @return true if the line was present and dirty
     */
    bool invalidate(Addr addr);

    /** Drops every line (e.g. at kernel offload boundaries). */
    void invalidateAll();

    const CacheParams &params() const { return params_; }
    std::uint32_t numSets() const { return numSets_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    std::uint32_t setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams params_;
    SystemStats &stats_;
    std::uint32_t numSets_;
    std::vector<Line> lines_; ///< numSets_ * ways, set-major
    std::uint64_t stamp_ = 0;
};

} // namespace syncron::cache

#endif // SYNCRON_CACHE_CACHE_HH
