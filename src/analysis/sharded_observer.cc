#include "analysis/sharded_observer.hh"

#include <algorithm>

#include "common/log.hh"
#include "system/machine.hh"

namespace syncron::analysis {

ShardedObserver::ShardedObserver(Machine &machine,
                                 sync::OpObserver &downstream)
    : machine_(machine), down_(downstream), lanes_(machine.numShards())
{}

std::vector<ShardedObserver::Record> &
ShardedObserver::laneFor(CoreId core)
{
    const UnitId unit = core / machine_.config().coresPerUnit;
    return lanes_[machine_.shardOf(unit)];
}

void
ShardedObserver::onIssue(CoreId core, const sync::SyncRequest &req,
                         Tick issued)
{
    std::vector<Record> &lane = laneFor(core);
    Record r;
    r.tick = issued;
    r.core = core;
    r.seq = lane.size();
    r.kind = Kind::Issue;
    r.req = req;
    r.issued = issued;
    lane.push_back(r);
}

void
ShardedObserver::onComplete(CoreId core, const sync::SyncRequest &req,
                            Tick issued, Tick completed)
{
    std::vector<Record> &lane = laneFor(core);
    Record r;
    r.tick = completed;
    r.core = core;
    r.seq = lane.size();
    r.kind = Kind::Complete;
    r.req = req;
    r.issued = issued;
    lane.push_back(r);
}

void
ShardedObserver::onAccess(CoreId core, Addr addr, bool isWrite, Tick now)
{
    std::vector<Record> &lane = laneFor(core);
    Record r;
    r.tick = now;
    r.core = core;
    r.seq = lane.size();
    r.kind = Kind::Access;
    r.addr = addr;
    r.isWrite = isWrite;
    lane.push_back(r);
}

void
ShardedObserver::onDestroy(Addr addr)
{
    SYNCRON_ASSERT(!machine_.inParallelRegion(),
                   "primitive destroyed inside a parallel window");
    flush();
    down_.onDestroy(addr);
}

void
ShardedObserver::flush()
{
    SYNCRON_ASSERT(!machine_.inParallelRegion(),
                   "observer flush inside a parallel window");
    std::vector<Record> merged;
    std::size_t total = 0;
    for (const std::vector<Record> &lane : lanes_)
        total += lane.size();
    if (total == 0)
        return;
    merged.reserve(total);
    for (std::vector<Record> &lane : lanes_) {
        merged.insert(merged.end(), lane.begin(), lane.end());
        lane.clear();
    }
    std::sort(merged.begin(), merged.end(),
              [](const Record &a, const Record &b) {
                  if (a.tick != b.tick)
                      return a.tick < b.tick;
                  if (a.core != b.core)
                      return a.core < b.core;
                  return a.seq < b.seq;
              });
    for (const Record &r : merged) {
        switch (r.kind) {
          case Kind::Issue:
            down_.onIssue(r.core, r.req, r.issued);
            break;
          case Kind::Complete:
            down_.onComplete(r.core, r.req, r.issued, r.tick);
            break;
          case Kind::Access:
            down_.onAccess(r.core, r.addr, r.isWrite, r.tick);
            break;
        }
    }
    replayed_ += merged.size();
}

} // namespace syncron::analysis
