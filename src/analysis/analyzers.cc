#include "analysis/analyzers.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace syncron::analysis {

namespace {

std::string
primName(std::uint64_t prim)
{
    std::ostringstream os;
    os << "prim#" << prim;
    return os.str();
}

} // namespace

// --------------------------------------------------------------------
// Shared held-lock tracking
// --------------------------------------------------------------------

std::vector<AnalysisEngine::HeldLock> &
AnalysisEngine::heldOf(std::uint32_t core)
{
    return held_[core];
}

bool
AnalysisEngine::removeHeld(std::uint32_t core, std::uint64_t prim)
{
    std::vector<HeldLock> &held = heldOf(core);
    for (auto it = held.rbegin(); it != held.rend(); ++it) {
        if (it->prim == prim) {
            held.erase(std::next(it).base());
            return true;
        }
    }
    return false;
}

// --------------------------------------------------------------------
// Crash/recovery generation tracking
// --------------------------------------------------------------------

void
AnalysisEngine::noteCrashRecovery(Tick tick,
                                  const std::set<std::uint64_t> &reminted)
{
    SYNCRON_ASSERT(!finished_, "analysis event after finish()");
    crashSeen_ = true;
    crashTick_ = tick;
    stalePrims_ = seenPrims_;
    for (std::uint64_t prim : reminted)
        stalePrims_.erase(prim);
}

void
AnalysisEngine::lintStaleGeneration(const OpEvent &ev, Tick tick)
{
    if (!crashSeen_ || !stalePrims_.count(ev.prim)
        || !staleReported_.insert(ev.prim).second) {
        return;
    }
    Finding f;
    f.kind = FindingKind::StaleGenerationUse;
    std::ostringstream os;
    os << "core " << ev.core << " used " << primName(ev.prim)
       << ", minted before the crash at tick " << crashTick_
       << " and never re-minted by recovery (stale generation)";
    f.message = os.str();
    f.core = ev.core;
    f.prim = ev.prim;
    f.tick = tick;
    report_.findings.push_back(f);
}

// --------------------------------------------------------------------
// Event intake
// --------------------------------------------------------------------

void
AnalysisEngine::onIssue(const OpEvent &ev)
{
    SYNCRON_ASSERT(!finished_, "analysis event after finish()");
    sawIssues_ = true;
    ++outstanding_[ev.core];
    lintStaleGeneration(ev, ev.issued);
    seenPrims_.insert(ev.prim);

    switch (ev.kind) {
      case sync::OpKind::LockAcquire:
        // Issue-time edges let the analyzer see the in-flight half of
        // an actual deadlock (acquires that never complete). They are
        // a superset of nothing: a completed acquire adds the same
        // edges again and the per-edge map keeps the first witness.
        addOrderEdges(ev.core, ev.prim, ev.issued);
        ++inflightAcquires_[{ev.core, ev.prim}];
        break;
      case sync::OpKind::LockRelease:
        // The SE commits a release when it is issued; pipelined record
        // completion can drift past later grants, so the held set is
        // maintained here (see commitRelease).
        commitRelease(ev.core, ev.prim, ev.issued);
        break;
      case sync::OpKind::BarrierWaitWithinUnit:
      case sync::OpKind::BarrierWaitAcrossUnits:
        // Checked at issue so an over-subscribed barrier (whose waits
        // never complete) is still diagnosed.
        lintBarrier(ev);
        break;
      default:
        break;
    }
}

void
AnalysisEngine::onComplete(const OpEvent &ev)
{
    SYNCRON_ASSERT(!finished_, "analysis event after finish()");
    if (sawIssues_)
        --outstanding_[ev.core];
    lintStaleGeneration(ev, ev.completed);
    seenPrims_.insert(ev.prim);

    switch (ev.kind) {
      case sync::OpKind::LockAcquire: {
        if (auto it = inflightAcquires_.find({ev.core, ev.prim});
            it != inflightAcquires_.end() && --it->second == 0) {
            inflightAcquires_.erase(it);
        }
        lintAcquire(ev);
        addOrderEdges(ev.core, ev.prim, ev.completed);
        heldOf(ev.core).push_back(HeldLock{ev.prim, ev.completed});
        // A coalesced acquire+release pair: the release was issued
        // while this acquire was still in flight and parked; commit it
        // now that the grant has landed.
        if (auto it = preIssuedReleases_.find({ev.core, ev.prim});
            it != preIssuedReleases_.end()) {
            if (--it->second == 0)
                preIssuedReleases_.erase(it);
            commitRelease(ev.core, ev.prim, ev.completed);
        }
        break;
      }

      case sync::OpKind::LockRelease:
        if (sawIssues_)
            break; // committed at its issue event
        lintRelease(ev);
        removeHeld(ev.core, ev.prim);
        break;

      case sync::OpKind::BarrierWaitWithinUnit:
      case sync::OpKind::BarrierWaitAcrossUnits:
        lintBarrier(ev);
        break;

      case sync::OpKind::SemWait: {
        SemState &s = sems_[ev.prim];
        if (!s.initKnown) {
            s.initKnown = true;
            s.initial = ev.resources;
        }
        s.grants.push_back(SemState::Grant{ev.completed, ev.core});
        break;
      }

      case sync::OpKind::SemPost:
        // Accounted at the ISSUE tick: req_async posts commit at issue
        // but may be recorded later (an awaited batch future), and a
        // grant they enabled can be recorded in between. The finish()
        // balance replay merges posts and grants by tick, so record
        // order never skews the accounting.
        sems_[ev.prim].postTicks.push_back(ev.issued);
        break;

      case sync::OpKind::CondWait: {
        // cond_wait = release of the associated lock at issue +
        // reacquisition at completion. The waiting core is blocked in
        // between (blocking form only, in-order core), so processing
        // both halves here keeps its held set exact.
        if (!removeHeld(ev.core, ev.assoc)) {
            Finding f;
            f.kind = FindingKind::ReleaseWithoutAcquire;
            f.message = "cond_wait on " + primName(ev.prim)
                        + " releases associated lock "
                        + primName(ev.assoc)
                        + " the core does not hold";
            f.core = ev.core;
            f.prim = ev.assoc;
            f.tick = ev.issued;
            report_.findings.push_back(std::move(f));
        }
        addOrderEdges(ev.core, ev.assoc, ev.completed);
        heldOf(ev.core).push_back(HeldLock{ev.assoc, ev.completed});
        takeOwnership(locks_[ev.assoc], ev.core, ev.completed);
        break;
      }

      case sync::OpKind::CondSignal:
      case sync::OpKind::CondBroadcast:
        break;
    }
}

// --------------------------------------------------------------------
// Misuse linter
// --------------------------------------------------------------------

void
AnalysisEngine::takeOwnership(LockState &s, std::uint32_t core,
                              Tick tick)
{
    if (s.owned && s.owner != core)
        ++s.pendingReleases[s.owner];
    s.owned = true;
    s.owner = core;
    s.ownedSince = tick;
}

void
AnalysisEngine::lintAcquire(const OpEvent &ev)
{
    // No owned-at-acquire check: with cond_wait recorded at completion,
    // a signaler's acquire of the associated lock legitimately appears
    // in the stream while the waiter's (already SE-released) ownership
    // record is still pending. Releases carry the checkable invariant;
    // a displaced owner goes on the pending-release list so its delayed
    // record is matched, not flagged.
    takeOwnership(locks_[ev.prim], ev.core, ev.completed);
}

void
AnalysisEngine::commitRelease(std::uint32_t core, std::uint64_t prim,
                              Tick tick)
{
    // Issued while its own acquire is still in flight (the coalesced
    // acquire+release batching the SE supports): park it; the acquire's
    // completion consumes it. Only when the core does not already hold
    // the lock — then the release belongs to the held instance.
    bool held = false;
    for (const HeldLock &h : heldOf(core))
        held = held || h.prim == prim;
    if (!held && inflightAcquires_.count({core, prim}) != 0) {
        ++preIssuedReleases_[{core, prim}];
        return;
    }

    OpEvent ev;
    ev.kind = sync::OpKind::LockRelease;
    ev.core = core;
    ev.prim = prim;
    ev.issued = tick;
    ev.completed = tick;
    lintRelease(ev);
    removeHeld(core, prim);
}

void
AnalysisEngine::lintRelease(const OpEvent &ev)
{
    LockState &s = locks_[ev.prim];
    if (s.owned && s.owner == ev.core) {
        s.owned = false;
        s.everReleased = true;
        s.lastReleaser = ev.core;
        s.lastReleaseTick = ev.completed;
        return;
    }
    if (auto it = s.pendingReleases.find(ev.core);
        it != s.pendingReleases.end()) {
        // Delayed record of a release the SE already processed (the
        // next owner's acquire was recorded first) — legitimate.
        if (--it->second == 0)
            s.pendingReleases.erase(it);
        return;
    }

    Finding f;
    f.core = ev.core;
    f.prim = ev.prim;
    f.tick = ev.issued;
    if (!s.owned && s.everReleased && s.lastReleaser == ev.core) {
        f.kind = FindingKind::DoubleRelease;
        f.message = "lock " + primName(ev.prim)
                    + " released twice by core "
                    + std::to_string(ev.core) + " without reacquiring";
        f.witness.push_back(WitnessStep{s.lastReleaser, ev.prim,
                                        s.lastReleaseTick,
                                        "previous release"});
    } else if (s.owned) {
        f.kind = FindingKind::ReleaseWithoutAcquire;
        f.message = "lock " + primName(ev.prim) + " released by core "
                    + std::to_string(ev.core)
                    + " while owned by core " + std::to_string(s.owner);
        f.witness.push_back(WitnessStep{s.owner, ev.prim, s.ownedSince,
                                        "owner's acquire"});
    } else {
        f.kind = FindingKind::ReleaseWithoutAcquire;
        f.message = "lock " + primName(ev.prim) + " released by core "
                    + std::to_string(ev.core)
                    + " which never acquired it";
    }
    f.witness.push_back(
        WitnessStep{ev.core, ev.prim, ev.issued, "offending release"});
    report_.findings.push_back(std::move(f));
}

void
AnalysisEngine::lintBarrier(const OpEvent &ev)
{
    BarrierState &b = barriers_[ev.prim];
    if (b.reported)
        return;

    const bool withinUnit =
        ev.kind == sync::OpKind::BarrierWaitWithinUnit;
    const std::uint32_t capacity = withinUnit
                                       ? shape_.clientCoresPerUnit
                                       : shape_.totalClientCores();

    std::string why;
    if (ev.participants == 0) {
        why = "zero participants";
    } else if (capacity != 0 && ev.participants > capacity) {
        why = std::to_string(ev.participants) + " participants exceed "
              + (withinUnit ? "the unit's " : "the machine's ")
              + std::to_string(capacity) + " client cores";
    } else if (b.seen && b.participants != ev.participants) {
        why = "arity changed across waits ("
              + std::to_string(b.participants) + " vs "
              + std::to_string(ev.participants) + ")";
    }
    if (!b.seen) {
        b.seen = true;
        b.participants = ev.participants;
    }
    if (why.empty())
        return;

    b.reported = true;
    Finding f;
    f.kind = FindingKind::BarrierArityMismatch;
    f.message = "barrier " + primName(ev.prim) + ": " + why;
    f.core = ev.core;
    f.prim = ev.prim;
    f.tick = ev.issued;
    f.witness.push_back(
        WitnessStep{ev.core, ev.prim, ev.issued, "offending wait"});
    report_.findings.push_back(std::move(f));
}

void
AnalysisEngine::checkSemaphores(AnalysisReport &report)
{
    for (auto &[prim, s] : sems_) {
        if (s.grants.empty())
            continue;
        std::sort(s.postTicks.begin(), s.postTicks.end());
        std::stable_sort(s.grants.begin(), s.grants.end(),
                         [](const SemState::Grant &a,
                            const SemState::Grant &b) {
                             return a.tick < b.tick;
                         });
        std::int64_t balance = s.initial;
        std::size_t post = 0;
        std::uint64_t waits = 0;
        for (const SemState::Grant &g : s.grants) {
            // Posts at the grant's own tick count as available: an
            // ideal backend can post and grant in the same tick.
            while (post < s.postTicks.size()
                   && s.postTicks[post] <= g.tick) {
                ++post;
                ++balance;
            }
            ++waits;
            --balance;
            if (balance < 0) {
                Finding f;
                f.kind = FindingKind::SemaphoreUnderflow;
                f.message = "semaphore " + primName(prim) + ": wait #"
                            + std::to_string(waits)
                            + " granted with no resources available "
                              "(initial " + std::to_string(s.initial)
                            + ", posts so far " + std::to_string(post)
                            + ")";
                f.core = g.core;
                f.prim = prim;
                f.tick = g.tick;
                f.witness.push_back(WitnessStep{
                    g.core, prim, g.tick, "over-granted wait"});
                report.findings.push_back(std::move(f));
                break;
            }
        }
    }
}

// --------------------------------------------------------------------
// Lock-order analyzer
// --------------------------------------------------------------------

void
AnalysisEngine::addOrderEdges(std::uint32_t core, std::uint64_t to,
                              Tick toTick)
{
    for (const HeldLock &h : heldOf(core)) {
        if (h.prim == to)
            continue;
        order_[h.prim].emplace(to, EdgeWitness{core, h.since, toTick});
    }
}

namespace {

/** DFS state for cycle extraction over the held-before graph. */
struct CycleFinder
{
    using Graph =
        std::map<std::uint64_t,
                 std::map<std::uint64_t, AnalysisEngine::EdgeWitness>>;

    explicit CycleFinder(const Graph &graph) : graph(graph) {}

    const Graph &graph;
    std::map<std::uint64_t, int> color; ///< 0 white, 1 gray, 2 black
    std::vector<std::uint64_t> path;
    std::set<std::vector<std::uint64_t>> cycles; ///< canonicalized

    void
    visit(std::uint64_t node)
    {
        color[node] = 1;
        path.push_back(node);
        auto it = graph.find(node);
        if (it != graph.end()) {
            for (const auto &[next, witness] : it->second) {
                const int c = color[next];
                if (c == 0) {
                    visit(next);
                } else if (c == 1) {
                    // Back edge: the cycle is path[pos(next)..] + next.
                    auto pos = std::find(path.begin(), path.end(), next);
                    std::vector<std::uint64_t> cycle(pos, path.end());
                    // Canonical rotation (smallest node first) so the
                    // same cycle found from different roots dedupes.
                    auto minIt =
                        std::min_element(cycle.begin(), cycle.end());
                    std::rotate(cycle.begin(), minIt, cycle.end());
                    cycles.insert(std::move(cycle));
                }
            }
        }
        path.pop_back();
        color[node] = 2;
    }
};

} // namespace

void
AnalysisEngine::reportCycles(AnalysisReport &report)
{
    CycleFinder finder(order_);
    for (const auto &[node, edges] : order_) {
        if (finder.color[node] == 0)
            finder.visit(node);
    }

    for (const std::vector<std::uint64_t> &cycle : finder.cycles) {
        Finding f;
        f.kind = FindingKind::LockOrderCycle;
        std::string chain;
        for (std::uint64_t node : cycle)
            chain += primName(node) + " -> ";
        chain += primName(cycle.front());
        f.message = "lock-order cycle: " + chain;
        f.prim = cycle.front();
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            const std::uint64_t from = cycle[i];
            const std::uint64_t to = cycle[(i + 1) % cycle.size()];
            const EdgeWitness &w = order_.at(from).at(to);
            if (i == 0) {
                f.core = w.core;
                f.tick = w.toTick;
            }
            std::ostringstream note;
            note << "core " << w.core << " acquired " << primName(to)
                 << " while holding " << primName(from)
                 << " (held since tick " << w.fromTick << ")";
            f.witness.push_back(
                WitnessStep{w.core, to, w.toTick, note.str()});
        }
        report.findings.push_back(std::move(f));
    }
}

// --------------------------------------------------------------------
// Lockset race checker
// --------------------------------------------------------------------

void
AnalysisEngine::onAccess(std::uint32_t core, Addr addr, bool isWrite,
                         Tick tick)
{
    SYNCRON_ASSERT(!finished_, "analysis access after finish()");
    ShadowWord &w = shadow_[addr];
    const std::vector<HeldLock> &held = heldOf(core);

    switch (w.state) {
      case AccessState::Virgin:
        w.state = AccessState::Exclusive;
        w.firstCore = core;
        break;

      case AccessState::Exclusive:
        if (core == w.firstCore)
            break; // single-owner initialization: no refinement yet
        // Second core: the candidate set starts as its current lockset.
        for (const HeldLock &h : held)
            w.candidates.insert(h.prim);
        w.state = isWrite ? AccessState::SharedModified
                          : AccessState::Shared;
        break;

      case AccessState::Shared:
      case AccessState::SharedModified: {
        // Refine: candidates ∩= locks held on this access.
        for (auto it = w.candidates.begin(); it != w.candidates.end();) {
            const std::uint64_t cand = *it;
            const bool holds =
                std::any_of(held.begin(), held.end(),
                            [cand](const HeldLock &h) {
                                return h.prim == cand;
                            });
            it = holds ? std::next(it) : w.candidates.erase(it);
        }
        if (isWrite)
            w.state = AccessState::SharedModified;
        break;
      }
    }

    if (w.state == AccessState::SharedModified && w.candidates.empty()
        && !w.reported) {
        w.reported = true;
        Finding f;
        f.kind = FindingKind::EmptyLocksetRace;
        std::ostringstream msg;
        msg << "shadow state @" << addr << ": "
            << (isWrite ? "write" : "read") << " by core " << core
            << " with empty candidate lockset (racing with core "
            << (w.everWritten ? w.lastWriterCore : w.firstCore) << ")";
        f.message = msg.str();
        f.core = core;
        f.prim = addr;
        f.tick = tick;
        if (w.everWritten) {
            f.witness.push_back(WitnessStep{w.lastWriterCore, addr,
                                            w.lastWriteTick,
                                            "previous write"});
        } else {
            f.witness.push_back(WitnessStep{
                w.firstCore, addr, 0, "earlier exclusive access"});
        }
        f.witness.push_back(
            WitnessStep{core, addr, tick,
                        isWrite ? "racing write" : "racing read"});
        report_.findings.push_back(std::move(f));
    }

    if (isWrite) {
        w.everWritten = true;
        w.lastWriterCore = core;
        w.lastWriteTick = tick;
    }
}

// --------------------------------------------------------------------
// Finish
// --------------------------------------------------------------------

AnalysisReport
AnalysisEngine::finish()
{
    SYNCRON_ASSERT(!finished_, "AnalysisEngine::finish() called twice");
    finished_ = true;

    reportCycles(report_);
    checkSemaphores(report_);

    for (const auto &[prim, s] : locks_) {
        if (!s.owned)
            continue;
        Finding f;
        f.kind = FindingKind::LockHeldAtTeardown;
        f.message = "lock " + primName(prim) + " still owned by core "
                    + std::to_string(s.owner)
                    + " when the run finished";
        f.core = s.owner;
        f.prim = prim;
        f.tick = s.ownedSince;
        report_.findings.push_back(std::move(f));
    }

    if (sawIssues_) {
        for (const auto &[core, count] : outstanding_) {
            if (count <= 0)
                continue;
            Finding f;
            f.kind = FindingKind::PendingOpLeak;
            f.message = std::to_string(count)
                        + " operation(s) issued by core "
                        + std::to_string(core)
                        + " never completed (leaked futures or "
                          "operations blocked at teardown)";
            f.core = core;
            report_.findings.push_back(std::move(f));
        }
    }

    return std::move(report_);
}

} // namespace syncron::analysis
