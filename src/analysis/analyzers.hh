/**
 * @file
 * The sync-correctness analysis engine: three analyses over one
 * synchronization-operation event stream.
 *
 *  1. Eraser-style lockset race checker. Workloads report accesses to
 *     lock-protected shadow state through SyncApi::accessHint(); the
 *     checker refines, per address, the candidate set of locks that
 *     were held on every access, through the classic state machine
 *     (Virgin -> Exclusive -> Shared -> SharedModified, refining only
 *     once a second core appears so single-owner initialization never
 *     false-positives) and reports a write whose candidate set is
 *     empty, with the previous writer as witness.
 *
 *  2. Lock-order deadlock analyzer. Maintains each core's held-lock
 *     set from the operation stream (LockSet members are ordinary
 *     locks; ScopedLock scope-exit releases appear as detached release
 *     records; cond_wait counts as release of the associated lock at
 *     issue and reacquisition at completion) and accumulates the
 *     held-before graph: an edge A -> B for every acquire of B while
 *     holding A, with the first (core, ticks) witness kept per edge.
 *     finish() reports every cycle with its full witness path.
 *
 *  3. Misuse linter. Release-without-acquire and double-release
 *     (per-lock owner tracking), barrier arity vs the machine shape
 *     and vs the first-seen arity of the same barrier, semaphore
 *     underflow (waits granted beyond initial resources + posts, on a
 *     tick-ordered merge so asynchronous post completion never
 *     reorders the accounting), pending-operation leaks at teardown
 *     (live only: issue events have no offline counterpart), and locks
 *     still held at teardown.
 *
 * The engine is deliberately driven by plain OpEvent values rather
 * than live simulator types: the live path (analysis::LiveAnalyzer)
 * and the offline path (analysis::analyzeTrace) feed the same engine,
 * and tests can seed defect scenarios directly.
 *
 * Stream contract: events arrive in completion order, which equals
 * simulation-event order (per core this is program order — the cores
 * are in-order). Primitive identities are dense ids, never recycled
 * within one engine's lifetime.
 */

#ifndef SYNCRON_ANALYSIS_ANALYZERS_HH
#define SYNCRON_ANALYSIS_ANALYZERS_HH

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "analysis/report.hh"
#include "common/types.hh"
#include "sync/opcodes.hh"

namespace syncron::analysis {

/** Machine shape the analyzed stream ran on (barrier arity checks). */
struct MachineShape
{
    std::uint32_t numUnits = 0;
    std::uint32_t clientCoresPerUnit = 0;

    std::uint32_t
    totalClientCores() const
    {
        return numUnits * clientCoresPerUnit;
    }
};

/** One synchronization operation, decoupled from simulator types. */
struct OpEvent
{
    std::uint32_t core = 0; ///< dense client-core index
    sync::OpKind kind = sync::OpKind::LockAcquire;
    std::uint64_t prim = 0;  ///< primitive identity (dense id)
    std::uint64_t assoc = 0; ///< cond_wait's associated lock identity
    Tick issued = 0;
    Tick completed = 0;
    std::uint32_t participants = 0; ///< barrier arity (barrier_wait)
    std::uint32_t resources = 0;    ///< initial resources (sem_wait)
};

/** The combined analysis engine; see the file comment. */
class AnalysisEngine
{
  public:
    explicit AnalysisEngine(MachineShape shape) : shape_(shape) {}

    /** First witness of one held-before edge (public for reporting). */
    struct EdgeWitness
    {
        std::uint32_t core;
        Tick fromTick; ///< when the held (from) lock was acquired
        Tick toTick;   ///< when the new (to) lock was acquired/issued
    };

    /**
     * An operation was issued. Optional (traces carry completions
     * only); when fed, enables the pending-op-leak check and lets the
     * lock-order analyzer see acquires that never complete — the
     * in-flight half of an actual deadlock.
     */
    void onIssue(const OpEvent &ev);

    /** An operation completed. The main event. */
    void onComplete(const OpEvent &ev);

    /** A core touched shadow state (SyncApi::accessHint). */
    void onAccess(std::uint32_t core, Addr addr, bool isWrite, Tick tick);

    /**
     * The stream crossed a crash/recovery boundary at @p tick.
     * Primitives seen before this point are stale unless their identity
     * appears in @p reminted (recovery re-created them); any later
     * operation on a stale primitive is flagged as StaleGenerationUse —
     * post-crash code holding a pre-crash handle that recovery never
     * re-minted (once per primitive).
     */
    void noteCrashRecovery(Tick tick,
                           const std::set<std::uint64_t> &reminted);

    /**
     * Ends the stream: runs cycle detection, semaphore-balance replay,
     * and the teardown checks, and returns everything found. Call once.
     */
    AnalysisReport finish();

  private:
    // -- Shared held-lock tracking -------------------------------------
    struct HeldLock
    {
        std::uint64_t prim;
        Tick since; ///< acquisition completion tick
    };

    std::vector<HeldLock> &heldOf(std::uint32_t core);
    bool removeHeld(std::uint32_t core, std::uint64_t prim);

    // -- Lock-order analyzer -------------------------------------------
    void addOrderEdges(std::uint32_t core, std::uint64_t to, Tick toTick);
    void reportCycles(AnalysisReport &report);

    // -- Misuse linter --------------------------------------------------
    struct LockState
    {
        bool owned = false;
        std::uint32_t owner = 0;
        Tick ownedSince = 0;
        bool everReleased = false;
        std::uint32_t lastReleaser = 0;
        Tick lastReleaseTick = 0;
        /**
         * Former owners whose release record has not arrived yet. A
         * fire-and-forget release (req_async) commits SE-side at issue
         * but is recorded at future drop, so the next owner's acquire
         * can legitimately be recorded first; the displaced owner's
         * eventual release must then not be flagged. Counted, since a
         * core can be displaced again before its old record drains.
         */
        std::map<std::uint32_t, unsigned> pendingReleases;
    };

    /** Transfers @p s to @p core, displacing any current owner. */
    static void takeOwnership(LockState &s, std::uint32_t core,
                              Tick tick);

    /**
     * Processes a release at its SE-side commit point. When issue
     * events flow (live streams), that point is the release's ISSUE:
     * pipelined/batched release records complete out of order, but the
     * issue event sits at the exact simulated moment the SE commits the
     * release, keeping the held set — and therefore the order edges —
     * exact. A release issued while its own acquire is still in flight
     * (a coalesced acquire+release pair) is parked and consumed the
     * moment that acquire completes.
     */
    void commitRelease(std::uint32_t core, std::uint64_t prim,
                       Tick tick);

    struct BarrierState
    {
        bool seen = false;
        std::uint32_t participants = 0;
        bool reported = false;
    };

    struct SemState
    {
        bool initKnown = false;
        std::uint32_t initial = 0;
        std::vector<Tick> postTicks; ///< post issue ticks
        struct Grant
        {
            Tick tick; ///< wait completion tick
            std::uint32_t core;
        };
        std::vector<Grant> grants;
    };

    void lintAcquire(const OpEvent &ev);
    void lintRelease(const OpEvent &ev);
    void lintBarrier(const OpEvent &ev);
    void lintStaleGeneration(const OpEvent &ev, Tick tick);
    void checkSemaphores(AnalysisReport &report);

    // -- Lockset race checker ------------------------------------------
    enum class AccessState
    {
        Virgin,         ///< never accessed
        Exclusive,      ///< one core only so far (initialization)
        Shared,         ///< read-shared across cores
        SharedModified, ///< written while shared — races reportable
    };

    struct ShadowWord
    {
        AccessState state = AccessState::Virgin;
        std::uint32_t firstCore = 0;
        /** Candidate locks; meaningful once refined (past Exclusive). */
        std::set<std::uint64_t> candidates;
        bool reported = false;
        bool everWritten = false;
        std::uint32_t lastWriterCore = 0;
        Tick lastWriteTick = 0;
    };

    MachineShape shape_;
    AnalysisReport report_;
    bool finished_ = false;

    std::map<std::uint32_t, std::vector<HeldLock>> held_;
    /// held-before graph: from -> (to -> first witness)
    std::map<std::uint64_t, std::map<std::uint64_t, EdgeWitness>> order_;
    std::map<std::uint64_t, LockState> locks_;
    std::map<std::uint64_t, BarrierState> barriers_;
    std::map<std::uint64_t, SemState> sems_;
    std::map<Addr, ShadowWord> shadow_;
    /// live only: per-core outstanding (issued - completed) op count
    std::map<std::uint32_t, std::int64_t> outstanding_;
    /// live only: (core, lock) -> acquires issued but not yet completed
    std::map<std::pair<std::uint32_t, std::uint64_t>, unsigned>
        inflightAcquires_;
    /// live only: (core, lock) -> releases issued before their own
    /// acquire completed (coalesced pairs); consumed at that completion
    std::map<std::pair<std::uint32_t, std::uint64_t>, unsigned>
        preIssuedReleases_;
    bool sawIssues_ = false;

    // -- Crash/recovery generation tracking ----------------------------
    /// every primitive identity seen so far (issue or completion)
    std::set<std::uint64_t> seenPrims_;
    bool crashSeen_ = false;
    Tick crashTick_ = 0;
    /// identities live before the crash, minus those recovery re-minted
    std::set<std::uint64_t> stalePrims_;
    std::set<std::uint64_t> staleReported_;
};

} // namespace syncron::analysis

#endif // SYNCRON_ANALYSIS_ANALYZERS_HH
