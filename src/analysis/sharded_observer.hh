/**
 * @file
 * Per-shard buffering mux in front of a sync-operation observer.
 *
 * Under sharded simulation the SyncApi notify hooks fire on whichever
 * worker thread owns the issuing core's shard, but LiveAnalyzer (and
 * OpObserver implementations in general) are single-threaded state
 * machines. ShardedObserver sits between them: each shard appends its
 * events to a private lane (no locking — one writer per lane, and the
 * lanes are only merged at quiescence), and flush() replays the union
 * into the downstream observer in a canonical order.
 *
 * The merge key is (tick, core, lane sequence). Per core that is exactly
 * program order (the cores are in-order and a core's events all land in
 * one lane), which is the ordering contract observer.hh promises.
 * Cross-core ties at the same tick are canonicalized by core id — a
 * total order independent of the shard count and of host scheduling, so
 * a sharded run reports exactly the findings a single-shard run does.
 */

#ifndef SYNCRON_ANALYSIS_SHARDED_OBSERVER_HH
#define SYNCRON_ANALYSIS_SHARDED_OBSERVER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sync/observer.hh"
#include "sync/request.hh"

namespace syncron {
class Machine;
} // namespace syncron

namespace syncron::analysis {

/** Thread-safe per-shard front end for a single-threaded OpObserver. */
class ShardedObserver : public sync::OpObserver
{
  public:
    /** Buffers events from @p machine 's shards for @p downstream. */
    ShardedObserver(Machine &machine, sync::OpObserver &downstream);

    void onIssue(CoreId core, const sync::SyncRequest &req,
                 Tick issued) override;
    void onComplete(CoreId core, const sync::SyncRequest &req, Tick issued,
                    Tick completed) override;
    void onAccess(CoreId core, Addr addr, bool isWrite, Tick now) override;

    /** Destroys are host-side (outside parallel windows): flush every
     *  lane so prior events precede the invalidation, then forward. */
    void onDestroy(Addr addr) override;

    /**
     * Merges all lanes in canonical (tick, core, lane-sequence) order,
     * replays them into the downstream observer, and clears the lanes.
     * Must be called at quiescence (between windows or after the run);
     * NdpSystem calls it once before finishing the analyzer.
     */
    void flush();

    /** Total events buffered-and-replayed so far (test visibility). */
    std::uint64_t replayed() const { return replayed_; }

  private:
    enum class Kind : std::uint8_t
    {
        Issue,
        Complete,
        Access,
    };

    struct Record
    {
        Tick tick = 0; ///< tick the hook fired (completion tick for
                       ///< Complete — the merge must honor it)
        CoreId core = 0;
        std::uint64_t seq = 0; ///< per-lane arrival order
        Kind kind = Kind::Issue;
        sync::SyncRequest req =
            sync::SyncRequest::fromMessageInfo(sync::OpKind::LockAcquire,
                                               0, 0);
        Tick issued = 0; ///< Issue/Complete
        Addr addr = 0;   ///< Access only
        bool isWrite = false;
    };

    std::vector<Record> &laneFor(CoreId core);

    Machine &machine_;
    sync::OpObserver &down_;
    std::vector<std::vector<Record>> lanes_; ///< one per shard
    std::uint64_t replayed_ = 0;
};

} // namespace syncron::analysis

#endif // SYNCRON_ANALYSIS_SHARDED_OBSERVER_HH
