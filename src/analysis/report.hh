/**
 * @file
 * Structured findings of the sync-correctness analyses (src/analysis/).
 *
 * Every analyzer reports through an AnalysisReport: a list of Finding
 * records, each carrying the defect kind, a human-readable message, the
 * (core, primitive, tick) triple identifying the offending operation,
 * and a witness path — the sequence of operations that substantiates
 * the finding (e.g. the edges of a lock-order cycle, or the two
 * conflicting accesses of a race). Reports print human-readably and
 * serialize as JSON through the existing harness::JsonWriter.
 *
 * Findings are fatal by default in tests and under --analyze: a clean
 * run is the invariant (see ROADMAP "analysis-clean").
 */

#ifndef SYNCRON_ANALYSIS_REPORT_HH
#define SYNCRON_ANALYSIS_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace syncron::analysis {

/** Defect classes the analyzers can report. */
enum class FindingKind
{
    EmptyLocksetRace,      ///< shared write with empty candidate lockset
    LockOrderCycle,        ///< cycle in the held-before graph
    ReleaseWithoutAcquire, ///< lock released by a non-owner
    DoubleRelease,         ///< lock released twice without reacquiring
    BarrierArityMismatch,  ///< participants vs machine shape / table
    SemaphoreUnderflow,    ///< waits granted beyond initial + posts
    PendingOpLeak,         ///< operations issued but never completed
    LockHeldAtTeardown,    ///< lock still owned when the run finished
    StaleGenerationUse,    ///< pre-crash primitive used after recovery
                           ///< without being re-minted
};

/** Printable name for @p kind (stable, used in JSON). */
const char *findingKindName(FindingKind kind);

/** Sentinel core id for findings not attributable to one core. */
inline constexpr std::uint32_t kNoCore = ~std::uint32_t{0};

/** One step of a finding's witness path. */
struct WitnessStep
{
    std::uint32_t core = kNoCore; ///< dense client-core index
    std::uint64_t prim = 0;       ///< primitive id (or shadow address)
    Tick tick = 0;
    std::string note; ///< what happened at this step
};

/** One defect, with enough structure to act on it mechanically. */
struct Finding
{
    FindingKind kind = FindingKind::EmptyLocksetRace;
    std::string message;
    std::uint32_t core = kNoCore; ///< dense client-core index
    std::uint64_t prim = 0;       ///< primitive id (or shadow address)
    Tick tick = 0;                ///< tick of the offending operation
    std::vector<WitnessStep> witness;
};

/** The result of one analysis pass over an operation stream. */
struct AnalysisReport
{
    std::vector<Finding> findings;

    /** True when no analyzer reported anything. */
    bool clean() const { return findings.empty(); }

    /** Human-readable summary, one block per finding. */
    void print(std::ostream &os) const;

    /** JSON serialization ({"clean":..., "findings":[...]}). */
    void writeJson(std::ostream &os) const;
};

} // namespace syncron::analysis

#endif // SYNCRON_ANALYSIS_REPORT_HH
