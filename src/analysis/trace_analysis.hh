/**
 * @file
 * Offline analysis of captured sync-op traces: feeds a PR-4 trace file
 * through the same AnalysisEngine the live --analyze path uses, so the
 * lock-order analyzer and misuse linter run on any trace — captured
 * from a real run, synthesized by the scenario generator, or produced
 * elsewhere. (The lockset race checker is live-only: traces carry no
 * shadow-state accesses.) The tools/analyze_trace binary is a thin CLI
 * over analyzeTrace().
 */

#ifndef SYNCRON_ANALYSIS_TRACE_ANALYSIS_HH
#define SYNCRON_ANALYSIS_TRACE_ANALYSIS_HH

#include "analysis/report.hh"
#include "trace/format.hh"

namespace syncron::analysis {

/** Runs the trace-applicable analyses over @p trace. */
AnalysisReport analyzeTrace(const trace::Trace &trace);

} // namespace syncron::analysis

#endif // SYNCRON_ANALYSIS_TRACE_ANALYSIS_HH
