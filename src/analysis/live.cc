#include "analysis/live.hh"

#include "common/log.hh"

namespace syncron::analysis {

std::uint64_t
LiveAnalyzer::idOf(Addr addr)
{
    auto [it, inserted] = ids_.try_emplace(addr, nextId_);
    if (inserted)
        ++nextId_;
    return it->second;
}

OpEvent
LiveAnalyzer::toEvent(CoreId core, const sync::SyncRequest &req,
                      Tick issued, Tick completed)
{
    OpEvent ev;
    ev.core = cfg_.denseClientIndex(core);
    ev.kind = req.kind();
    ev.prim = idOf(req.var());
    ev.issued = issued;
    ev.completed = completed;
    switch (req.kind()) {
      case sync::OpKind::BarrierWaitWithinUnit:
      case sync::OpKind::BarrierWaitAcrossUnits:
        ev.participants = req.participants();
        break;
      case sync::OpKind::SemWait:
        ev.resources = req.resources();
        break;
      case sync::OpKind::CondWait:
        ev.assoc = idOf(req.condLock());
        break;
      default:
        break;
    }
    return ev;
}

void
LiveAnalyzer::onIssue(CoreId core, const sync::SyncRequest &req,
                      Tick issued)
{
    engine_.onIssue(toEvent(core, req, issued, issued));
}

void
LiveAnalyzer::onComplete(CoreId core, const sync::SyncRequest &req,
                         Tick issued, Tick completed)
{
    engine_.onComplete(toEvent(core, req, issued, completed));
}

void
LiveAnalyzer::onAccess(CoreId core, Addr addr, bool isWrite, Tick tick)
{
    engine_.onAccess(cfg_.denseClientIndex(core), addr, isWrite, tick);
}

void
LiveAnalyzer::onDestroy(Addr addr)
{
    // Retire the identity: a recycled line is a fresh primitive.
    ids_.erase(addr);
}

const AnalysisReport &
LiveAnalyzer::finish()
{
    SYNCRON_ASSERT(!finished_, "LiveAnalyzer::finish() called twice");
    finished_ = true;
    report_ = engine_.finish();
    return report_;
}

} // namespace syncron::analysis
