#include "analysis/trace_analysis.hh"

#include "analysis/analyzers.hh"

namespace syncron::analysis {

AnalysisReport
analyzeTrace(const trace::Trace &trace)
{
    AnalysisEngine engine(
        MachineShape{trace.numUnits, trace.clientCoresPerUnit});

    // Records are stored in capture order == completion order, exactly
    // the stream contract the engine expects. Issue events are not
    // replayed: every trace record is a completed op, so the
    // pending-op-leak check has nothing to say offline.
    for (const trace::TraceRecord &r : trace.records) {
        OpEvent ev;
        ev.core = r.core;
        ev.kind = r.kind;
        ev.prim = r.prim;
        ev.assoc = r.assocPrim;
        ev.issued = r.issued;
        ev.completed = r.completed;
        if (r.prim < trace.primitives.size()) {
            const trace::TracePrimitive &p = trace.primitives[r.prim];
            ev.participants = p.param;
            ev.resources = p.param;
        }
        engine.onComplete(ev);
    }
    return engine.finish();
}

} // namespace syncron::analysis
