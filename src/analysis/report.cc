#include "analysis/report.hh"

#include <ostream>

#include "harness/json.hh"

namespace syncron::analysis {

const char *
findingKindName(FindingKind kind)
{
    switch (kind) {
      case FindingKind::EmptyLocksetRace: return "empty-lockset-race";
      case FindingKind::LockOrderCycle: return "lock-order-cycle";
      case FindingKind::ReleaseWithoutAcquire:
        return "release-without-acquire";
      case FindingKind::DoubleRelease: return "double-release";
      case FindingKind::BarrierArityMismatch:
        return "barrier-arity-mismatch";
      case FindingKind::SemaphoreUnderflow: return "semaphore-underflow";
      case FindingKind::PendingOpLeak: return "pending-op-leak";
      case FindingKind::LockHeldAtTeardown: return "lock-held-at-teardown";
      case FindingKind::StaleGenerationUse:
        return "stale-generation-use";
    }
    return "?";
}

void
AnalysisReport::print(std::ostream &os) const
{
    if (clean()) {
        os << "analysis: clean (no findings)\n";
        return;
    }
    os << "analysis: " << findings.size() << " finding(s)\n";
    for (const Finding &f : findings) {
        os << "  [" << findingKindName(f.kind) << "] " << f.message
           << "\n    at core ";
        if (f.core == kNoCore)
            os << "<none>";
        else
            os << f.core;
        os << ", prim#" << f.prim << ", tick " << f.tick << "\n";
        for (const WitnessStep &w : f.witness) {
            os << "    witness: core ";
            if (w.core == kNoCore)
                os << "<none>";
            else
                os << w.core;
            os << ", prim#" << w.prim << ", tick " << w.tick << ": "
               << w.note << "\n";
        }
    }
}

void
AnalysisReport::writeJson(std::ostream &os) const
{
    harness::JsonWriter jw(os);
    jw.beginObject();
    jw.field("clean", clean());
    jw.key("findings").beginArray();
    for (const Finding &f : findings) {
        jw.beginObject();
        jw.field("kind", findingKindName(f.kind));
        jw.field("message", f.message);
        if (f.core != kNoCore)
            jw.field("core", f.core);
        jw.field("prim", f.prim);
        jw.field("tick", static_cast<std::uint64_t>(f.tick));
        jw.key("witness").beginArray();
        for (const WitnessStep &w : f.witness) {
            jw.beginObject();
            if (w.core != kNoCore)
                jw.field("core", w.core);
            jw.field("prim", w.prim);
            jw.field("tick", static_cast<std::uint64_t>(w.tick));
            jw.field("note", w.note);
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
}

} // namespace syncron::analysis
