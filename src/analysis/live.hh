/**
 * @file
 * Live analysis observer: adapts the SyncApi operation stream (a
 * sync::OpObserver, sibling of trace::TraceCapture) to the
 * AnalysisEngine. Installed by NdpSystem when SystemConfig::analyze is
 * set; one instance per system, so `--analyze` composes with
 * harness::runGrid(--jobs>1) — every grid cell owns an independent
 * system and therefore an independent analyzer.
 *
 * Core ids are mapped to dense client indices (the identity traces
 * use) and primitive addresses to dense, never-recycled identities:
 * destroying a primitive retires its identity, so a recycled line
 * starts fresh instead of inheriting the old primitive's state.
 */

#ifndef SYNCRON_ANALYSIS_LIVE_HH
#define SYNCRON_ANALYSIS_LIVE_HH

#include <cstdint>
#include <unordered_map>

#include "analysis/analyzers.hh"
#include "analysis/report.hh"
#include "sync/observer.hh"
#include "system/config.hh"

namespace syncron::analysis {

/** SyncApi observer feeding the analysis engine during a run. */
class LiveAnalyzer final : public sync::OpObserver
{
  public:
    explicit LiveAnalyzer(const SystemConfig &cfg)
        : cfg_(cfg),
          engine_(MachineShape{cfg.numUnits, cfg.clientCoresPerUnit})
    {}

    // -- sync::OpObserver ----------------------------------------------
    void onIssue(CoreId core, const sync::SyncRequest &req,
                 Tick issued) override;
    void onComplete(CoreId core, const sync::SyncRequest &req,
                    Tick issued, Tick completed) override;
    void onAccess(CoreId core, Addr addr, bool isWrite,
                  Tick tick) override;
    void onDestroy(Addr addr) override;

    /**
     * Forwards a crash/recovery boundary to the engine; @p reminted
     * holds the dense identities recovery re-created (see
     * AnalysisEngine::noteCrashRecovery).
     */
    void
    noteCrashRecovery(Tick tick, const std::set<std::uint64_t> &reminted)
    {
        engine_.noteCrashRecovery(tick, reminted);
    }

    /**
     * Ends the stream and stores the report; call once, when the run
     * completes. Returns the stored report.
     */
    const AnalysisReport &finish();

    bool finished() const { return finished_; }

    /** The report produced by finish() (empty before). */
    const AnalysisReport &report() const { return report_; }

  private:
    OpEvent toEvent(CoreId core, const sync::SyncRequest &req,
                    Tick issued, Tick completed);

    /** Dense, never-recycled identity for the primitive at @p addr. */
    std::uint64_t idOf(Addr addr);

    const SystemConfig &cfg_;
    AnalysisEngine engine_;
    AnalysisReport report_;
    bool finished_ = false;
    std::unordered_map<Addr, std::uint64_t> ids_;
    std::uint64_t nextId_ = 0;
};

} // namespace syncron::analysis

#endif // SYNCRON_ANALYSIS_LIVE_HH
