#include "sim/sharded_kernel.hh"

#include <algorithm>

#include "common/log.hh"

namespace syncron::sim {

ShardedKernel::ShardedKernel(std::vector<EventQueue *> queues, Tick lookahead,
                             Client &client)
    : queues_(std::move(queues)), lookahead_(lookahead), client_(client)
{
    SYNCRON_ASSERT(!queues_.empty(), "ShardedKernel needs at least one shard");
    for (EventQueue *q : queues_)
        SYNCRON_ASSERT(q, "null shard queue");
    SYNCRON_ASSERT(queues_.size() == 1 || lookahead_ > 0,
                   "zero lookahead requires lockstep (single shard)");
    if (queues_.size() > 1) {
        errors_.resize(queues_.size());
        workers_.reserve(queues_.size());
        for (std::size_t s = 0; s < queues_.size(); ++s)
            workers_.emplace_back([this, s] { workerLoop(s); });
    }
}

ShardedKernel::~ShardedKernel()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }
}

Tick
ShardedKernel::horizon() const
{
    Tick w = kTickNever;
    for (const EventQueue *q : queues_)
        w = std::min(w, q->nextTime());
    return w;
}

void
ShardedKernel::workerLoop(std::size_t shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        Tick limit;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            limit = windowLimit_;
        }
        try {
            queues_[shard]->run(limit);
        } catch (...) {
            errors_[shard] = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --running_;
        }
        doneCv_.notify_one();
    }
}

void
ShardedKernel::runWindow(Tick limit)
{
    if (queues_.size() == 1) {
        queues_[0]->run(limit);
        return;
    }
    client_.windowBegin();
    {
        std::lock_guard<std::mutex> lock(mu_);
        windowLimit_ = limit;
        running_ = workers_.size();
        ++generation_;
    }
    cv_.notify_all();
    {
        std::unique_lock<std::mutex> lock(mu_);
        doneCv_.wait(lock, [&] { return running_ == 0; });
    }
    client_.windowEnd();
    // Rethrow the lowest shard's failure so error reporting is
    // deterministic even when several shards fault in one window.
    for (std::size_t s = 0; s < errors_.size(); ++s) {
        if (errors_[s]) {
            std::exception_ptr ep = errors_[s];
            for (auto &e : errors_)
                e = nullptr;
            std::rethrow_exception(ep);
        }
    }
}

Tick
ShardedKernel::run(Tick until)
{
    for (;;) {
        client_.drainMailboxes();
        Tick w = horizon();
        if (w == kTickNever || w > until)
            break;
        Tick limit = w;
        if (lookahead_ > 0) {
            // run(until) is inclusive: the window covers
            // [w, w + lookahead - 1] so no event inside it can produce a
            // cross-shard arrival (stamped >= t + lookahead) that lands
            // inside the same window.
            limit = w + lookahead_ - 1;
        }
        limit = std::min(limit, until);
        runWindow(limit);
        ++windows_;
    }
    Tick maxNow = 0;
    for (const EventQueue *q : queues_)
        maxNow = std::max(maxNow, q->now());
    return maxNow;
}

} // namespace syncron::sim
