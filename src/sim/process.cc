#include "sim/process.hh"

// All of sim/process.hh is header-only (coroutine machinery must be
// visible to every translation unit); this file exists to give the
// module a home in the library and to catch ODR issues early.

namespace syncron::sim {
} // namespace syncron::sim
