/**
 * @file
 * Coroutine-based simulated processes.
 *
 * Each simulated NDP core (and each server-core software loop) is a C++20
 * coroutine returning sim::Process. The coroutine issues timed operations
 * by co_await-ing awaitables that suspend it and arrange for the
 * EventQueue to resume it when the operation completes:
 *
 *   - Delay{eq, ticks}   : fixed-latency operation
 *   - Gate               : one-shot completion signaled by another device
 *
 * Processes start suspended; Process::start() schedules the first resume,
 * so spawning order and start time are explicit and deterministic.
 */

#ifndef SYNCRON_SIM_PROCESS_HH
#define SYNCRON_SIM_PROCESS_HH

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace syncron::sim {

/**
 * Handle to a simulated process coroutine. Move-only; owns the coroutine
 * frame. Exceptions escaping the coroutine body propagate out of
 * EventQueue::run() so tests and the harness observe them.
 */
class Process
{
  public:
    struct promise_type
    {
        Process
        get_return_object()
        {
            return Process{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            // Let the exception escape resume(): it unwinds through the
            // event callback and out of EventQueue::run().
            throw;
        }
    };

    Process() = default;

    explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {}

    Process(Process &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Process &
    operator=(Process &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    ~Process() { destroy(); }

    /** Schedules the first resume of this process at the current tick. */
    void
    start(EventQueue &eq)
    {
        SYNCRON_ASSERT(handle_ && !handle_.done(), "starting dead process");
        auto h = handle_;
        eq.scheduleIn(0, [h] { h.resume(); });
    }

    /** True once the coroutine body has run to completion. */
    bool done() const { return !handle_ || handle_.done(); }

    /** True if this handle refers to a live coroutine. */
    bool valid() const { return static_cast<bool>(handle_); }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

/** Awaitable fixed delay: co_await Delay{eq, ticks}. */
struct Delay
{
    EventQueue &eq;
    Tick ticks;

    bool await_ready() const noexcept { return ticks == 0; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        eq.scheduleIn(ticks, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}
};

/**
 * One-shot completion gate.
 *
 * A requester co_awaits the gate after sending a request; the responder
 * calls open() (optionally with a payload and an extra delay) which
 * schedules the requester's resume. A gate may be opened before it is
 * awaited (the await then completes immediately).
 *
 * The gate lives on the awaiting coroutine's frame; because the awaiter
 * stays suspended until open(), the storage is guaranteed alive when the
 * responder touches it.
 */
class Gate
{
  public:
    explicit Gate(EventQueue &eq) : eq_(&eq) {}

    Gate(const Gate &) = delete;
    Gate &operator=(const Gate &) = delete;

    /**
     * Signals completion. The waiter (if already suspended) is resumed
     * @p delay ticks from now; @p payload is returned from co_await.
     */
    void
    open(std::uint64_t payload = 0, Tick delay = 0)
    {
        SYNCRON_ASSERT(!opened_, "gate opened twice");
        opened_ = true;
        payload_ = payload;
        readyAt_ = eq_->now() + delay;
        if (waiter_) {
            auto h = waiter_;
            waiter_ = nullptr;
            eq_->scheduleIn(delay, [h] { h.resume(); });
        }
    }

    /** True once open() has been called. */
    bool opened() const { return opened_; }

    /**
     * Tick at which the waiter observes the completion (open tick plus
     * the open() delay). Only meaningful once opened().
     */
    Tick
    readyAt() const
    {
        SYNCRON_ASSERT(opened_, "readyAt() on an unopened gate");
        return readyAt_;
    }

    // -- Awaitable interface -------------------------------------------
    bool
    await_ready() const noexcept
    {
        return opened_ && readyAt_ <= eq_->now();
    }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        SYNCRON_ASSERT(!waiter_, "gate awaited by two processes");
        if (opened_) {
            // Opened with a delay that has not yet elapsed.
            Tick delta = readyAt_ > eq_->now() ? readyAt_ - eq_->now() : 0;
            eq_->scheduleIn(delta, [h] { h.resume(); });
        } else {
            waiter_ = h;
        }
    }

    std::uint64_t await_resume() const noexcept { return payload_; }

  private:
    EventQueue *eq_;
    std::coroutine_handle<> waiter_;
    std::uint64_t payload_ = 0;
    Tick readyAt_ = 0;
    bool opened_ = false;
};

} // namespace syncron::sim

#endif // SYNCRON_SIM_PROCESS_HH
