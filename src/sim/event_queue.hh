/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global EventQueue orders all activity in the simulated NDP
 * system at picosecond resolution. Devices (DRAM, crossbars, links, SEs,
 * server cores) are modeled as busy-until resources that schedule
 * callbacks; simulated NDP cores are coroutines (sim/process.hh) that the
 * queue resumes when their pending operation completes.
 *
 * Events at the same tick execute in scheduling order (FIFO), which makes
 * every simulation deterministic and reproducible.
 */

#ifndef SYNCRON_SIM_EVENT_QUEUE_HH
#define SYNCRON_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace syncron::sim {

/** Global time-ordered queue of callbacks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedules @p cb at absolute tick @p when (must be >= now()). */
    void schedule(Tick when, Callback cb);

    /** Schedules @p cb @p delta ticks from now. */
    void scheduleIn(Tick delta, Callback cb) { schedule(now_ + delta, std::move(cb)); }

    /** Executes the next event; returns false when the queue is empty. */
    bool runOne();

    /**
     * Runs events until the queue is empty or simulated time would exceed
     * @p until. Returns the tick of the last executed event.
     */
    Tick run(Tick until = kTickNever);

    /** True when no events are pending. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq; ///< tie-breaker: FIFO among same-tick events
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace syncron::sim

#endif // SYNCRON_SIM_EVENT_QUEUE_HH
