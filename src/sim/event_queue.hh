/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global EventQueue orders all activity in the simulated NDP
 * system at picosecond resolution. Devices (DRAM, crossbars, links, SEs,
 * server cores) are modeled as busy-until resources that schedule
 * callbacks; simulated NDP cores are coroutines (sim/process.hh) that the
 * queue resumes when their pending operation completes.
 *
 * Events at the same tick execute in scheduling order (FIFO), which makes
 * every simulation deterministic and reproducible.
 *
 * Implementation: a hierarchical timer — a near wheel at 1-tick
 * granularity plus an overflow min-heap for far-future events — backed
 * by a free-list node pool, so schedule()/pop are O(1) for the short
 * link/DRAM/SE latencies that dominate and never allocate in steady
 * state. Callbacks are stored inline (common/inplace_callback.hh), so
 * scheduling a coroutine resume or a device callback performs zero heap
 * allocations.
 *
 * Wheel layout: simulated time is divided into epochs of 2^kWheelBits
 * ticks. The wheel holds exactly the pending events of the current
 * epoch (slot = when mod 2^kWheelBits, one FIFO list per slot, with a
 * three-level bitmap for O(1) next-slot scans); all later events wait
 * in the overflow heap, ordered by (when, seq). When the current epoch
 * drains, the queue jumps to the epoch of the heap's minimum and
 * promotes that epoch's events into the wheel in (when, seq) order —
 * same-tick FIFO survives promotion because heap order extends the
 * slot-append order (see runOne()).
 */

#ifndef SYNCRON_SIM_EVENT_QUEUE_HH
#define SYNCRON_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/inplace_callback.hh"
#include "common/types.hh"

namespace syncron::sim {

/** Global time-ordered queue of callbacks. */
class EventQueue
{
  public:
    /**
     * Inline capacity for event callbacks. 64 bytes holds every capture
     * in the tree — coroutine resumes (one handle) and the largest
     * device callbacks (engine/overflow: this + station ref + typed
     * request + core/var/gate) — with headroom; larger captures fail to
     * compile (capture pointers instead).
     */
    static constexpr std::size_t kCallbackBytes = 64;
    using Callback = common::InplaceCallback<kCallbackBytes>;

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedules @p cb at absolute tick @p when (must be >= now()). */
    void schedule(Tick when, Callback cb);

    /** Schedules @p cb @p delta ticks from now. */
    void scheduleIn(Tick delta, Callback cb) { schedule(now_ + delta, std::move(cb)); }

    /** Executes the next event; returns false when the queue is empty. */
    bool runOne();

    /**
     * Runs events until the queue is empty or simulated time would exceed
     * @p until. Returns the tick of the last executed event.
     */
    Tick run(Tick until = kTickNever);

    /** True when no events are pending. */
    bool empty() const { return pending_ == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return pending_; }

    /** Host-side count of events executed so far (perf accounting). */
    std::uint64_t executed() const { return executed_; }

    /**
     * Tick of the earliest pending event, or kTickNever when empty.
     * Pure (performs no epoch promotion), so a sharded coordinator can
     * poll every shard's horizon between bounded run(until) windows
     * without perturbing queue state.
     */
    Tick nextTime() const { return nextEventTime(); }

  private:
    // -- Geometry ------------------------------------------------------
    /** log2 of the near-wheel slot count: one epoch = 65536 ticks
     *  (65.5 ns), which covers the common device latencies (core cycle
     *  0.4 ns, SPU cycle 1 ns, links 40 ns, DRAM tens of ns). */
    static constexpr unsigned kWheelBits = 16;
    static constexpr std::size_t kWheelSlots = std::size_t{1} << kWheelBits;
    static constexpr Tick kSlotMask = Tick{kWheelSlots - 1};

    static constexpr std::uint32_t kNilIdx = ~std::uint32_t{0};

    /** Pooled event node; FIFO-chained per wheel slot via `next`. */
    struct Event
    {
        Callback cb;
        Tick when = 0;
        std::uint64_t seq = 0; ///< tie-breaker: FIFO among same ticks
        std::uint32_t next = kNilIdx;
    };

    /** One near-wheel slot: intrusive FIFO list of pool indices. */
    struct Slot
    {
        std::uint32_t head = kNilIdx;
        std::uint32_t tail = kNilIdx;
    };

    /** Overflow-heap entry (min-heap on (when, seq)). */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t idx; ///< pool index

        bool
        operator<(const HeapEntry &o) const
        {
            // std::push_heap builds a max-heap; invert for a min-heap.
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    // -- Pool ----------------------------------------------------------
    std::uint32_t allocNode(Tick when, Callback cb);
    void freeNode(std::uint32_t idx);

    // -- Wheel ---------------------------------------------------------
    void pushSlot(std::uint32_t idx);
    std::uint32_t popSlot(std::size_t slot);
    /** First non-empty slot index >= @p from, or kWheelSlots. */
    std::size_t nextSlotFrom(std::size_t from) const;
    void markSlot(std::size_t slot);
    void clearSlot(std::size_t slot);

    /** Jumps to the overflow heap's first epoch and promotes its events
     *  into the (drained) wheel. Precondition: wheel empty, heap not. */
    void promoteNextEpoch();

    /** Tick of the next pending event, or kTickNever. Pure: performs no
     *  promotion, so stopping early (run(until)) never strands state. */
    Tick nextEventTime() const;

    /** Pops and runs the event at @p when (the nextEventTime()). */
    void popAndRun(Tick when);

    std::vector<Event> pool_;
    std::uint32_t freeHead_ = kNilIdx;

    std::vector<Slot> slots_;
    /** Three-level occupancy bitmap over slots_ (64^3 >= 2^16). */
    std::vector<std::uint64_t> bitsL0_;          ///< 1 bit per slot
    std::array<std::uint64_t, 16> bitsL1_{};     ///< 1 bit per L0 word
    std::uint64_t bitsL2_ = 0;                   ///< 1 bit per L1 word

    std::vector<HeapEntry> heap_; ///< far-future events (later epochs)

    Tick now_ = 0;
    std::uint64_t epoch_ = 0; ///< epoch currently mapped onto the wheel
    std::size_t wheelCount_ = 0;
    std::size_t pending_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace syncron::sim

#endif // SYNCRON_SIM_EVENT_QUEUE_HH
