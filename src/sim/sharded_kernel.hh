/**
 * @file
 * Conservative parallel-discrete-event coordinator over per-shard
 * EventQueues.
 *
 * One simulation is partitioned into shards (groups of NDP units), each
 * owning a private timing-wheel EventQueue (sim/event_queue.hh). Shards
 * only interact through mailboxes drained at window barriers, so each
 * shard can run a bounded window of events on its own host thread.
 *
 * Window protocol (classic conservative PDES with a global window):
 *
 *   loop:
 *     drain mailboxes (single-threaded; delivers cross-shard envelopes
 *       into destination queues in a deterministic order)
 *     W = min over shards of nextTime()          // global horizon
 *     stop when no shard has work (or W > until)
 *     run every shard to min(W + lookahead - 1, until) in parallel
 *
 * Safety: a cross-shard message posted at tick t carries an
 * earliest-arrival stamp >= t + lookahead (the mailbox owner guarantees
 * this; lookahead is derived from the configured link + crossbar
 * latencies). Every event executed inside a window happens at tick
 * <= W + lookahead - 1, so any envelope it posts arrives at
 * >= W + lookahead — strictly after the window — and is delivered by the
 * next barrier before any shard advances past it. No shard ever receives
 * an event in its past, which is what makes the parallel run bit-identical
 * to the single-threaded one.
 *
 * When lookahead collapses to zero (zero-latency link sweeps) the caller
 * must fall back to a single shard (lockstep); the coordinator asserts
 * this. With one queue the coordinator degenerates to bounded serial
 * stepping and never spawns threads, so the windowed path is exercised
 * uniformly at every shard count.
 */

#ifndef SYNCRON_SIM_SHARDED_KERNEL_HH
#define SYNCRON_SIM_SHARDED_KERNEL_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace syncron::sim {

/** Windowed coordinator advancing per-shard EventQueues in parallel. */
class ShardedKernel
{
  public:
    /** Barrier-time callout owned by whoever owns the mailboxes. */
    class Client
    {
      public:
        virtual ~Client() = default;

        /**
         * Deliver all queued cross-shard envelopes into destination
         * queues. Called single-threaded, only at window barriers (no
         * shard is running). Must be deterministic: delivery order may
         * not depend on the shard count or host thread timing.
         */
        virtual void drainMailboxes() = 0;

        /** Barrier-time notifications bracketing each parallel window.
         *  Lets the owner flag "a window is in flight" so quiescent-only
         *  operations (primitive alloc/destroy) can assert. */
        virtual void windowBegin() {}
        virtual void windowEnd() {}
    };

    /**
     * @param queues    one EventQueue per shard (non-owning, stable).
     * @param lookahead minimum cross-shard latency in ticks; must be > 0
     *                  when more than one queue is given.
     * @param client    mailbox owner called at every barrier.
     */
    ShardedKernel(std::vector<EventQueue *> queues, Tick lookahead,
                  Client &client);
    ~ShardedKernel();

    ShardedKernel(const ShardedKernel &) = delete;
    ShardedKernel &operator=(const ShardedKernel &) = delete;

    /**
     * Runs every shard until all queues and mailboxes drain, or until
     * the global horizon passes @p until (bounded stepping for crash
     * injection). Events with tick <= until execute; later ones stay
     * queued. Returns the max now() across shards.
     */
    Tick run(Tick until = kTickNever);

    /** Number of parallel windows executed so far. */
    std::uint64_t windows() const { return windows_; }

    Tick lookahead() const { return lookahead_; }
    std::size_t shards() const { return queues_.size(); }

  private:
    /** Min nextTime() across shards (kTickNever when all empty). */
    Tick horizon() const;
    /** Runs every queue to @p limit — worker threads when sharded. */
    void runWindow(Tick limit);
    void workerLoop(std::size_t shard);

    std::vector<EventQueue *> queues_;
    Tick lookahead_;
    Client &client_;
    std::uint64_t windows_ = 0;

    // -- Worker pool (only populated when queues_.size() > 1) ----------
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cv_;       ///< coordinator -> workers
    std::condition_variable doneCv_;   ///< workers -> coordinator
    std::uint64_t generation_ = 0;     ///< bumped per window
    Tick windowLimit_ = 0;
    std::size_t running_ = 0;          ///< workers still inside a window
    bool stop_ = false;
    std::vector<std::exception_ptr> errors_; ///< per-shard, rethrown by index
};

} // namespace syncron::sim

#endif // SYNCRON_SIM_SHARDED_KERNEL_HH
