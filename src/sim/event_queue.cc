#include "sim/event_queue.hh"

#include <utility>

#include "common/log.hh"

namespace syncron::sim {

void
EventQueue::schedule(Tick when, Callback cb)
{
    SYNCRON_ASSERT(when >= now_,
                   "scheduling into the past: when=" << when
                       << " now=" << now_);
    events_.push(Event{when, nextSeq_++, std::move(cb)});
}

bool
EventQueue::runOne()
{
    if (events_.empty())
        return false;
    // std::priority_queue::top() returns const&; the callback must be
    // moved out before pop, so copy the metadata and steal the callback.
    Event ev = std::move(const_cast<Event &>(events_.top()));
    events_.pop();
    now_ = ev.when;
    ev.cb();
    return true;
}

Tick
EventQueue::run(Tick until)
{
    while (!events_.empty() && events_.top().when <= until)
        runOne();
    return now_;
}

} // namespace syncron::sim
