#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/log.hh"

namespace syncron::sim {

namespace {

/** All-ones from bit @p b upward; 0 when @p b >= 64 (shift-safe). */
inline std::uint64_t
maskFrom(unsigned b)
{
    return b >= 64 ? 0 : (~std::uint64_t{0} << b);
}

} // namespace

EventQueue::EventQueue()
    : slots_(kWheelSlots), bitsL0_(kWheelSlots / 64, 0)
{
    pool_.reserve(256);
    heap_.reserve(64);
}

// --------------------------------------------------------------------
// Node pool
// --------------------------------------------------------------------

std::uint32_t
EventQueue::allocNode(Tick when, Callback cb)
{
    std::uint32_t idx;
    if (freeHead_ != kNilIdx) {
        idx = freeHead_;
        freeHead_ = pool_[idx].next;
        pool_[idx].cb = std::move(cb);
    } else {
        idx = static_cast<std::uint32_t>(pool_.size());
        pool_.push_back(Event{std::move(cb), 0, 0, kNilIdx});
    }
    pool_[idx].when = when;
    pool_[idx].next = kNilIdx;
    return idx;
}

void
EventQueue::freeNode(std::uint32_t idx)
{
    pool_[idx].next = freeHead_;
    freeHead_ = idx;
}

// --------------------------------------------------------------------
// Near wheel
// --------------------------------------------------------------------

void
EventQueue::markSlot(std::size_t slot)
{
    const std::size_t word = slot >> 6;
    bitsL0_[word] |= std::uint64_t{1} << (slot & 63);
    bitsL1_[word >> 6] |= std::uint64_t{1} << (word & 63);
    bitsL2_ |= std::uint64_t{1} << (word >> 6);
}

void
EventQueue::clearSlot(std::size_t slot)
{
    const std::size_t word = slot >> 6;
    bitsL0_[word] &= ~(std::uint64_t{1} << (slot & 63));
    if (bitsL0_[word] == 0) {
        bitsL1_[word >> 6] &= ~(std::uint64_t{1} << (word & 63));
        if (bitsL1_[word >> 6] == 0)
            bitsL2_ &= ~(std::uint64_t{1} << (word >> 6));
    }
}

void
EventQueue::pushSlot(std::uint32_t idx)
{
    const std::size_t slot =
        static_cast<std::size_t>(pool_[idx].when & kSlotMask);
    Slot &s = slots_[slot];
    if (s.head == kNilIdx) {
        s.head = s.tail = idx;
        markSlot(slot);
    } else {
        pool_[s.tail].next = idx;
        s.tail = idx;
    }
    ++wheelCount_;
}

std::uint32_t
EventQueue::popSlot(std::size_t slot)
{
    Slot &s = slots_[slot];
    const std::uint32_t idx = s.head;
    s.head = pool_[idx].next;
    if (s.head == kNilIdx) {
        s.tail = kNilIdx;
        clearSlot(slot);
    }
    --wheelCount_;
    return idx;
}

std::size_t
EventQueue::nextSlotFrom(std::size_t from) const
{
    if (from >= kWheelSlots)
        return kWheelSlots;
    std::size_t word = from >> 6;
    std::uint64_t w = bitsL0_[word] & maskFrom(from & 63);
    if (w == 0) {
        // Climb the summary levels to the next non-empty L0 word.
        std::size_t l1w = word >> 6;
        std::uint64_t u =
            bitsL1_[l1w] & maskFrom(static_cast<unsigned>(word & 63) + 1);
        if (u == 0) {
            const std::uint64_t v =
                bitsL2_ & maskFrom(static_cast<unsigned>(l1w) + 1);
            if (v == 0)
                return kWheelSlots;
            l1w = static_cast<std::size_t>(std::countr_zero(v));
            u = bitsL1_[l1w];
        }
        word = l1w * 64
               + static_cast<std::size_t>(std::countr_zero(u));
        w = bitsL0_[word];
    }
    return word * 64 + static_cast<std::size_t>(std::countr_zero(w));
}

// --------------------------------------------------------------------
// Overflow heap and epoch promotion
// --------------------------------------------------------------------

void
EventQueue::promoteNextEpoch()
{
    SYNCRON_ASSERT(wheelCount_ == 0 && !heap_.empty(),
                   "promotion with events still in the wheel");
    epoch_ = heap_.front().when >> kWheelBits;
    // Heap pops come out ordered by (when, seq), so same-tick events
    // append to their slot in seq order — FIFO is preserved, and any
    // event scheduled after this promotion has a larger seq and lands
    // behind them.
    while (!heap_.empty() && (heap_.front().when >> kWheelBits) == epoch_) {
        std::pop_heap(heap_.begin(), heap_.end());
        const HeapEntry e = heap_.back();
        heap_.pop_back();
        pushSlot(e.idx);
    }
}

Tick
EventQueue::nextEventTime() const
{
    if (wheelCount_ > 0) {
        // All wheel events live in epoch_, which now_ has entered (or
        // not reached yet, right after construction / a promotion).
        const std::size_t from =
            (now_ >> kWheelBits) == epoch_
                ? static_cast<std::size_t>(now_ & kSlotMask)
                : 0;
        const std::size_t slot = nextSlotFrom(from);
        SYNCRON_ASSERT(slot < kWheelSlots,
                       "wheel count/bitmap disagree");
        return (Tick{epoch_} << kWheelBits) + slot;
    }
    if (!heap_.empty())
        return heap_.front().when;
    return kTickNever;
}

void
EventQueue::popAndRun(Tick when)
{
    if (wheelCount_ == 0)
        promoteNextEpoch();
    const std::uint32_t idx =
        popSlot(static_cast<std::size_t>(when & kSlotMask));
    now_ = when;
    --pending_;
    ++executed_;
    // Move the callback out and recycle the node before invoking it, so
    // the callback may schedule (and reuse the node) freely.
    Callback cb = std::move(pool_[idx].cb);
    freeNode(idx);
    cb();
}

// --------------------------------------------------------------------
// Public interface
// --------------------------------------------------------------------

void
EventQueue::schedule(Tick when, Callback cb)
{
    SYNCRON_ASSERT(when >= now_,
                   "scheduling into the past: when=" << when
                       << " now=" << now_);
    const std::uint32_t idx = allocNode(when, std::move(cb));
    pool_[idx].seq = nextSeq_++;
    if ((when >> kWheelBits) == epoch_) {
        pushSlot(idx);
    } else {
        // Whenever user code runs, now_ is inside epoch_, so when >=
        // now_ puts later epochs (never earlier ones) in the heap.
        heap_.push_back(HeapEntry{when, pool_[idx].seq, idx});
        std::push_heap(heap_.begin(), heap_.end());
    }
    ++pending_;
}

bool
EventQueue::runOne()
{
    const Tick t = nextEventTime();
    if (t == kTickNever)
        return false;
    popAndRun(t);
    return true;
}

Tick
EventQueue::run(Tick until)
{
    for (;;) {
        const Tick t = nextEventTime();
        if (t == kTickNever || t > until)
            break;
        popAndRun(t);
    }
    return now_;
}

} // namespace syncron::sim
