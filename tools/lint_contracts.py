#!/usr/bin/env python3
"""Mechanical checks for this repo's decided API contracts.

Each rule here is a contract that was settled in a past change and must
not silently regress (ROADMAP "decided contracts"). The checks are pure
text scans — no compiler needed — so they run in well under five
seconds and are wired into CI ahead of the build:

  1. no-syncvar        The deprecated SyncVar shim layer is deleted;
                       the identifier must not reappear in code.
  2. no-scheme-switch  Backends are looked up through the string-keyed
                       BackendRegistry; `case Scheme::` dispatch is
                       allowed only in the name-mapping table
                       (src/system/config.cc).
  3. callback-bound    The kernel's event callback is an InplaceCallback
                       whose capacity is single-sourced in
                       src/sim/event_queue.hh; other files must use the
                       EventQueue::Callback alias, never instantiate
                       InplaceCallback<N> with their own bound.
  4. no-std-function   std::function allocates per capture and is banned
                       from simulation code (src/); the registry factory
                       and the cold stats visitor are the only allowed
                       uses. Bench/test driver code is exempt.
  5. header-hygiene    Every header under src/ carries an include guard
                       derived from its path (SYNCRON_<DIR>_<NAME>_HH),
                       no `#pragma once`, and no `../` relative
                       includes (all includes are src/-rooted).
  6. persist-scope     The PM persist hooks (durability::PersistHook
                       and its persist*() calls) appear only in
                       src/durability/ and src/syncron/ — the engine is
                       the sole component that mirrors state into the
                       PM domain; other simulation code goes through
                       SystemConfig::persistMode and the durability
                       manager.
  7. tracenet-scope    The POSIX socket API is confined to
                       src/tracenet/ (the trace-service transport) —
                       everything else talks through tracenet::Transport
                       so timeouts, partial sends, and EINTR handling
                       live in exactly one place. Matched on socket
                       headers and unambiguous API tokens (socketpair,
                       AF_INET, sockaddr_in...), not the bare word
                       "socket", which legitimately appears as the
                       NUMA-socket concept in coherence code.
  8. shard-scope       Under --sim-shards the machine has one timing
                       wheel per shard and only the PDES coordinator
                       may touch a queue it does not own. Scheduling on
                       the bare shard-0 queue (`eq().schedule[In]`) or
                       grabbing the full queue set (`shardQueues()`) is
                       scoped to src/sim/ and src/system/machine.* —
                       everyone else goes through eq(unit),
                       postMessage(), or memoryAccessAsync(), which
                       keep every event on its unit's own shard. The
                       allow-listed exceptions are single-queue-by-mode
                       paths (MiSAR overflow fallback, durability log)
                       that are guarded at runtime.

Usage:
  lint_contracts.py [--root DIR]   lint the tree, exit 1 on violations
  lint_contracts.py --self-test    prove each rule still fires on a
                                   seeded violation, exit 1 if any
                                   rule has gone blind
"""

import argparse
import os
import re
import sys
import tempfile

CODE_DIRS = ("src", "tests", "bench", "examples", "tools")
CODE_EXTS = (".cc", ".hh")

SYNCVAR_RE = re.compile(r"\bSyncVar\b")
SCHEME_SWITCH_RE = re.compile(r"\bcase\s+Scheme::")
INPLACE_INST_RE = re.compile(r"\bInplaceCallback\s*<")
STD_FUNCTION_RE = re.compile(r"\bstd::function\b")
PERSIST_CALL_RE = re.compile(r"(\.|->)\s*persist[A-Z]\w*\s*\(")
PERSIST_HOOK_RE = re.compile(r"\bPersistHook\b")
SHARD0_SCHEDULE_RE = re.compile(
    r"\beq\s*\(\s*\)\s*\.\s*schedule(In)?\s*\(")
SHARD_QUEUES_RE = re.compile(r"\bshardQueues\s*\(\s*\)")
SOCKET_INCLUDE_RE = re.compile(
    r'^\s*#\s*include\s+<(sys/socket\.h|netinet/[\w.]+|arpa/inet\.h)>',
    re.MULTILINE)
SOCKET_TOKEN_RE = re.compile(
    r"\b(socketpair|AF_INET|AF_UNIX|SOCK_STREAM|sockaddr_in"
    r"|getsockname|setsockopt)\b")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once", re.MULTILINE)
RELATIVE_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"\.\./', re.MULTILINE)
GUARD_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)", re.MULTILINE)

# Files (repo-relative, '/'-separated) where a rule is deliberately
# allowed. Keep each entry justified.
SCHEME_SWITCH_ALLOW = {
    "src/system/config.cc",  # Scheme <-> name mapping table
}
INPLACE_INST_ALLOW = {
    "src/common/inplace_callback.hh",  # the type itself
    "src/sim/event_queue.hh",          # the kernel's Callback alias
}
STD_FUNCTION_ALLOW = {
    "src/common/inplace_callback.hh",  # doc comment contrasting the two
    "src/common/stats.hh",             # cold end-of-run visitor
    "src/common/stats.cc",
    "src/sync/registry.hh",            # backend factory, cold
}
# The one component allowed to speak the raw socket API.
TRACENET_SCOPE_ALLOW_PREFIXES = ("src/tracenet/",)
# Directory prefixes where the persist hooks legitimately live: the
# durability subsystem defines them, the SynCron engine invokes them.
PERSIST_SCOPE_ALLOW_PREFIXES = ("src/durability/", "src/syncron/")
# Where the per-shard queue topology may be touched directly: the PDES
# kernel itself, the Machine (mailbox drain delivers onto foreign
# queues), and the system driver that hands the queue set to the
# ShardedKernel coordinator.
SHARD_SCOPE_ALLOW_PREFIXES = ("src/sim/",)
SHARD_SCOPE_ALLOW = {
    "src/system/machine.hh",   # eq()/shardQueues() definitions
    "src/system/machine.cc",   # mailbox drain + queue-set accessor
    "src/system/system.cc",    # builds the ShardedKernel from the set
    # Single-queue-by-mode paths, each guarded at runtime:
    "src/syncron/overflow.cc",   # MiSAR fallback asserts numShards()==1
    "src/durability/backend.cc", # durability log requires --sim-shards=1
}


def code_files(root):
    for d in CODE_DIRS:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if name.endswith(CODE_EXTS):
                    path = os.path.join(dirpath, name)
                    yield os.path.relpath(path, root).replace(os.sep, "/")


def line_of(text, match):
    return text.count("\n", 0, match.start()) + 1


def expected_guard(rel):
    # src/sync/api.hh -> SYNCRON_SYNC_API_HH
    stem = rel[len("src/"):]
    return "SYNCRON_" + re.sub(r"[/.]", "_", stem).upper()


def lint_tree(root):
    violations = []

    def report(rel, line, rule, msg):
        violations.append("%s:%d: [%s] %s" % (rel, line, rule, msg))

    for rel in code_files(root):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = f.read()

        for m in SYNCVAR_RE.finditer(text):
            report(rel, line_of(text, m), "no-syncvar",
                   "SyncVar reintroduced - use the typed handles "
                   "(sync::Lock/Barrier/Semaphore/CondVar)")

        if rel not in SCHEME_SWITCH_ALLOW:
            for m in SCHEME_SWITCH_RE.finditer(text):
                report(rel, line_of(text, m), "no-scheme-switch",
                       "backend dispatch on Scheme enum - go through "
                       "BackendRegistry (string-keyed)")

        if rel not in INPLACE_INST_ALLOW:
            for m in INPLACE_INST_RE.finditer(text):
                report(rel, line_of(text, m), "callback-bound",
                       "ad-hoc InplaceCallback<N> instantiation - use "
                       "sim::EventQueue::Callback so the capture bound "
                       "stays single-sourced")

        if rel.startswith("src/") and rel not in STD_FUNCTION_ALLOW:
            for m in STD_FUNCTION_RE.finditer(text):
                report(rel, line_of(text, m), "no-std-function",
                       "std::function in simulation code - use "
                       "InplaceCallback (alloc-free) or a template "
                       "parameter")

        if (rel.startswith("src/")
                and not rel.startswith(PERSIST_SCOPE_ALLOW_PREFIXES)):
            for m in PERSIST_CALL_RE.finditer(text):
                report(rel, line_of(text, m), "persist-scope",
                       "persist hook invoked outside src/durability/ + "
                       "src/syncron/ - PM mirroring is the engine's "
                       "job; configure SystemConfig::persistMode "
                       "instead")
            for m in PERSIST_HOOK_RE.finditer(text):
                report(rel, line_of(text, m), "persist-scope",
                       "PersistHook referenced outside src/durability/ "
                       "+ src/syncron/ - wire through "
                       "DurabilityManager, not the raw hook")

        if not rel.startswith(TRACENET_SCOPE_ALLOW_PREFIXES):
            for m in SOCKET_INCLUDE_RE.finditer(text):
                report(rel, line_of(text, m), "tracenet-scope",
                       "socket header included outside src/tracenet/ - "
                       "go through tracenet::Transport / Listener")
            for m in SOCKET_TOKEN_RE.finditer(text):
                report(rel, line_of(text, m), "tracenet-scope",
                       "raw socket API ('%s') outside src/tracenet/ - "
                       "go through tracenet::Transport / Listener"
                       % m.group(1))

        if (rel.startswith("src/")
                and not rel.startswith(SHARD_SCOPE_ALLOW_PREFIXES)
                and rel not in SHARD_SCOPE_ALLOW):
            for m in SHARD0_SCHEDULE_RE.finditer(text):
                report(rel, line_of(text, m), "shard-scope",
                       "schedule on the bare shard-0 queue (eq()) - "
                       "under --sim-shards this lands events on a "
                       "foreign shard; use eq(unit), postMessage(), or "
                       "memoryAccessAsync()")
            for m in SHARD_QUEUES_RE.finditer(text):
                report(rel, line_of(text, m), "shard-scope",
                       "shardQueues() outside the PDES coordinator "
                       "path - only sim/ and the Machine may touch "
                       "queues they do not own")

        if rel.startswith("src/") and rel.endswith(".hh"):
            m = PRAGMA_ONCE_RE.search(text)
            if m:
                report(rel, line_of(text, m), "header-hygiene",
                       "#pragma once - use the SYNCRON_*_HH guard")
            m = GUARD_RE.search(text)
            want = expected_guard(rel)
            if not m:
                report(rel, 1, "header-hygiene",
                       "missing include guard (expected %s)" % want)
            elif m.group(1) != want:
                report(rel, line_of(text, m), "header-hygiene",
                       "guard %s does not match path (expected %s)"
                       % (m.group(1), want))

        for m in RELATIVE_INCLUDE_RE.finditer(text):
            report(rel, line_of(text, m), "header-hygiene",
                   '"../" include - includes are src/-rooted')

    return violations


# One minimal fixture per rule; the self-test plants each in a scratch
# tree and requires the rule to fire. A rule that no longer fires on its
# own fixture has gone blind (e.g. a refactor broke its regex).
FIXTURES = [
    ("no-syncvar", "src/fixture.cc",
     "SyncVar v = api.create(addr);\n"),
    ("no-scheme-switch", "src/fixture.cc",
     "int f(Scheme s){switch(s){case Scheme::Ideal: return 1;}return 0;}\n"),
    ("callback-bound", "src/fixture.cc",
     "common::InplaceCallback<128> cb;\n"),
    ("no-std-function", "src/fixture.cc",
     "#include <functional>\nstd::function<void()> f;\n"),
    ("header-hygiene", "src/fixture.hh",
     "#pragma once\n#include \"../common/log.hh\"\n"),
    ("tracenet-scope", "src/fixture.cc",
     "#include <sys/socket.h>\n"
     "int f(){int sv[2];return socketpair(AF_UNIX,SOCK_STREAM,0,sv);}\n"),
    ("persist-scope", "src/fixture.cc",
     "void f(durability::PersistHook &h) { h.persistCounter(0, 0); }\n"),
    ("shard-scope", "src/fixture.cc",
     "void f(Machine &m) { m.eq().schedule(0, [] {});"
     " auto qs = m.shardQueues(); }\n"),
]


def self_test():
    failures = []
    for rule, rel, body in FIXTURES:
        with tempfile.TemporaryDirectory() as scratch:
            path = os.path.join(scratch, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(body)
            hits = [v for v in lint_tree(scratch) if "[%s]" % rule in v]
            if hits:
                print("self-test: %-17s fires (%d hit%s)"
                      % (rule, len(hits), "s" if len(hits) > 1 else ""))
            else:
                failures.append(rule)
                print("self-test: %-17s BLIND - fixture not flagged"
                      % rule)
    if failures:
        print("lint_contracts self-test FAILED: %s" % ", ".join(failures),
              file=sys.stderr)
        return 1
    print("lint_contracts self-test OK (%d rules)" % len(FIXTURES))
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="lint the repo's decided API contracts")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify each rule fires on a seeded violation")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    violations = lint_tree(args.root)
    for v in violations:
        print(v)
    if violations:
        print("lint_contracts: %d violation(s)" % len(violations),
              file=sys.stderr)
        return 1
    print("lint_contracts: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
