#!/usr/bin/env python3
"""Diff two BENCH_*.json perf records and flag regressions.

Every bench binary writes a machine-readable record with --json=<path>
(see harness::BenchReport): per-config simulated throughput (opsPerMs),
host kernel speed (eventsPerSec), an aggregate host events/sec, and —
for open-loop load points — per-OpKind tail-latency percentiles. This
tool compares a baseline record against a current one and exits
non-zero when a metric regresses beyond the threshold:

  - opsPerMs is simulated throughput: deterministic for a given commit,
    so any drop is a real behavioral/performance change.
  - eventsPerSec is host simulation speed: the metric the fast-kernel
    work optimizes, but noisy across machines, so it gets its own
    (typically looser) threshold.
  - p99Ns (open-loop configs only, i.e. records with a "load" object)
    is simulated tail latency: lower is better, so the regression
    direction is inverted — the gate fails when the current p99 EXCEEDS
    the baseline by more than the threshold.

Usage:
  perf_trend.py BASELINE.json CURRENT.json [--threshold 0.10]
                [--host-threshold 0.10] [--p99-threshold 0.10]
                [--allow-missing-baseline]
  perf_trend.py --self-test

CI wires this into the bench-perf job against the BENCH_*.json artifact
of the last successful run on main; --allow-missing-baseline keeps the
very first run (or a renamed bench) green. --self-test exercises the
gate logic on synthetic records and needs no files.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        rec = json.load(f)
    # Validate by schema, not by file name: a BENCH_*.json record is an
    # object with a bench name and a configs list. Records stamped with
    # "sanitizer" come from instrumented builds (-DSYNCRON_SANITIZE=...)
    # whose timings are meaningless as perf data — refuse them the same
    # way as a malformed record, so a sanitizer-job artifact can never
    # become a perf baseline.
    if not isinstance(rec, dict) or "bench" not in rec \
            or not isinstance(rec.get("configs"), list):
        raise ValueError("not a bench record (missing 'bench'/'configs')")
    if rec.get("sanitizer"):
        raise ValueError("sanitizer-instrumented record (%s); not usable "
                         "as perf data" % rec["sanitizer"])
    return rec


def fmt_delta(base, cur):
    if base <= 0:
        return "n/a"
    return "%+.1f%%" % ((cur - base) / base * 100.0)


def compare_metric(name, pairs, threshold, failures, higher_is_better=True):
    """pairs: list of (label, baseline_value, current_value).

    higher_is_better=False inverts the direction (latency metrics):
    the gate fails when the current value exceeds the baseline by more
    than the threshold instead of falling below it.
    """
    printed_header = False
    for label, base, cur in pairs:
        if base <= 0:
            continue
        delta = (cur - base) / base
        regressed = (delta < -threshold) if higher_is_better \
            else (delta > threshold)
        marker = ""
        if regressed:
            marker = "  << REGRESSION"
            failures.append(
                "%s '%s': %.3f -> %.3f (%s, threshold %s%.0f%%)"
                % (name, label, base, cur, fmt_delta(base, cur),
                   "-" if higher_is_better else "+", threshold * 100))
        if not printed_header:
            print("-- %s (fail %s %s%.0f%%)"
                  % (name,
                     "below" if higher_is_better else "above",
                     "-" if higher_is_better else "+", threshold * 100))
            printed_header = True
        print("  %-40s %12.3f %12.3f  %s%s"
              % (label, base, cur, fmt_delta(base, cur), marker))


def p99_pairs(base_cfgs, cur_cfgs, shared):
    """(label/op, baseline p99Ns, current p99Ns) for open-loop configs.

    Only configs carrying a "load" object participate: open-loop tail
    latency is a pure simulated quantity (deterministic per commit), so
    any change is a real protocol/performance change — closed-loop
    benches report percentiles for human inspection but their tails
    shift with workload re-tuning too often to gate on.
    """
    pairs = []
    for label in shared:
        bcfg, ccfg = base_cfgs[label], cur_cfgs[label]
        if "load" not in bcfg or "load" not in ccfg:
            continue
        bops = {e["op"]: e for e in bcfg.get("syncLatency", [])}
        cops = {e["op"]: e for e in ccfg.get("syncLatency", [])}
        for op in bops:
            if op in cops:
                pairs.append(("%s/%s" % (label, op),
                              bops[op].get("p99Ns", 0.0),
                              cops[op].get("p99Ns", 0.0)))
    return pairs


def run(argv):
    ap = argparse.ArgumentParser(
        description="diff two BENCH_*.json records, exit non-zero on "
                    "regression")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed opsPerMs regression "
                         "(fraction, default 0.10)")
    ap.add_argument("--host-threshold", type=float, default=0.10,
                    help="max allowed host events/sec regression "
                         "(fraction, default 0.10)")
    ap.add_argument("--p99-threshold", type=float, default=0.10,
                    help="max allowed open-loop p99 latency increase "
                         "(fraction, default 0.10)")
    ap.add_argument("--allow-missing-baseline", action="store_true",
                    help="exit 0 when the baseline file is absent")
    args = ap.parse_args(argv)

    try:
        base = load(args.baseline)
    except (OSError, ValueError) as e:
        # A record can be missing from the baseline artifacts for benign
        # reasons (very first CI run, a bench added by the current
        # change, a truncated artifact download): exit 0 with a notice
        # instead of a stack trace when the caller opted in.
        if args.allow_missing_baseline:
            print("perf_trend: no usable baseline record at '%s' (%s); "
                  "skipping comparison" % (args.baseline, e))
            return 0
        print("perf_trend: baseline '%s' unreadable: %s"
              % (args.baseline, e), file=sys.stderr)
        return 2
    try:
        cur = load(args.current)
    except (OSError, ValueError) as e:
        print("perf_trend: current record '%s' unreadable: %s"
              % (args.current, e), file=sys.stderr)
        return 2

    if base.get("bench") != cur.get("bench"):
        print("perf_trend: comparing different benches ('%s' vs '%s')"
              % (base.get("bench"), cur.get("bench")), file=sys.stderr)
        return 2

    base_cfgs = {c["label"]: c for c in base.get("configs", [])}
    cur_cfgs = {c["label"]: c for c in cur.get("configs", [])}
    shared = [l for l in base_cfgs if l in cur_cfgs]
    for l in base_cfgs:
        if l not in cur_cfgs:
            print("perf_trend: label '%s' only in baseline (renamed "
                  "config?)" % l)
    for l in cur_cfgs:
        if l not in base_cfgs:
            print("perf_trend: label '%s' is new (no baseline)" % l)

    failures = []

    print("== perf trend: %s (%d shared configs)"
          % (cur.get("bench"), len(shared)))
    compare_metric(
        "ops/ms (simulated)",
        [(l, base_cfgs[l].get("opsPerMs", 0.0),
          cur_cfgs[l].get("opsPerMs", 0.0)) for l in shared],
        args.threshold, failures)
    compare_metric(
        "events/sec (host, per config)",
        [(l, base_cfgs[l].get("eventsPerSec", 0.0),
          cur_cfgs[l].get("eventsPerSec", 0.0)) for l in shared],
        args.host_threshold, failures)
    compare_metric(
        "events/sec (host, aggregate)",
        [("<total>", base.get("host", {}).get("eventsPerSec", 0.0),
          cur.get("host", {}).get("eventsPerSec", 0.0))],
        args.host_threshold, failures)
    compare_metric(
        "p99 ns (open-loop, simulated)",
        p99_pairs(base_cfgs, cur_cfgs, shared),
        args.p99_threshold, failures, higher_is_better=False)

    if failures:
        print("\nperf_trend: %d regression(s):" % len(failures))
        for f in failures:
            print("  " + f)
        return 1
    print("\nperf_trend: OK (no metric regressed beyond threshold)")
    return 0


# ----------------------------------------------------------------------
# Self-test: synthetic records through the real entry point.
# ----------------------------------------------------------------------

def _record(bench="slo_curves", ops=100.0, p99=500.0, sanitizer=None,
            with_load=True):
    cfg = {"label": "SynCron/r0.4", "opsPerMs": ops,
           "eventsPerSec": 1e6,
           "syncLatency": [{"op": "lock_acquire", "count": 100,
                            "p50Ns": p99 / 2, "p99Ns": p99,
                            "p999Ns": p99 * 2}]}
    if with_load:
        cfg["load"] = {"ratePerUs": 0.4, "offered": 100, "issued": 100,
                       "dropped": 0, "queued": 0, "queueDelayTicks": 0}
    rec = {"bench": bench, "host": {"eventsPerSec": 1e6},
           "configs": [cfg]}
    if sanitizer:
        rec["sanitizer"] = sanitizer
    return rec


def self_test():
    import contextlib
    import io
    import os
    import tempfile

    checks = []

    def check(name, argv_records, expect_rc, extra_args=()):
        """Writes the records, runs the comparison, checks the rc."""
        with tempfile.TemporaryDirectory() as d:
            paths = []
            for i, rec in enumerate(argv_records):
                p = os.path.join(d, "r%d.json" % i)
                if rec is not None:  # None = deliberately absent file
                    with open(p, "w") as f:
                        json.dump(rec, f)
                paths.append(p)
            out = io.StringIO()
            with contextlib.redirect_stdout(out), \
                    contextlib.redirect_stderr(out):
                rc = run(paths + list(extra_args))
            ok = rc == expect_rc
            checks.append((name, ok, rc, expect_rc, out.getvalue()))

    # Identical records pass.
    check("identical records pass",
          [_record(), _record()], 0)
    # Simulated-throughput drop beyond 10% fails.
    check("opsPerMs regression fires",
          [_record(ops=100.0), _record(ops=80.0)], 1)
    # p99 increase beyond 10% fails (inverted direction).
    check("p99 regression fires",
          [_record(p99=500.0), _record(p99=700.0)], 1)
    # p99 *improvement* of the same magnitude must NOT fail.
    check("p99 improvement passes",
          [_record(p99=700.0), _record(p99=500.0)], 0)
    # Without a "load" object the config's p99 is not gated.
    check("closed-loop p99 not gated",
          [_record(p99=500.0, with_load=False),
           _record(p99=700.0, with_load=False)], 0)
    # A looser explicit p99 threshold tolerates the increase.
    check("p99 threshold adjustable",
          [_record(p99=500.0), _record(p99=700.0)], 0,
          extra_args=["--p99-threshold", "0.5"])
    # Sanitizer-stamped records are rejected outright.
    check("sanitizer baseline rejected",
          [_record(sanitizer="asan+ubsan"), _record()], 2)
    check("sanitizer current rejected",
          [_record(), _record(sanitizer="tsan")], 2)
    # Missing baseline: fatal by default, tolerated with the opt-in.
    check("missing baseline fatal by default",
          [None, _record()], 2)
    check("missing baseline tolerated with flag",
          [None, _record()], 0,
          extra_args=["--allow-missing-baseline"])
    # Mismatched bench names never compare.
    check("bench name mismatch rejected",
          [_record(bench="a"), _record(bench="b")], 2)

    failed = [c for c in checks if not c[1]]
    for name, ok, rc, expect, out in checks:
        print("  %-40s %s" % (name, "ok" if ok else
                              "FAIL (rc=%d, want %d)" % (rc, expect)))
        if not ok:
            print("    --- captured output ---")
            for line in out.splitlines():
                print("    " + line)
    if failed:
        print("perf_trend --self-test: %d/%d checks failed"
              % (len(failed), len(checks)))
        return 1
    print("perf_trend --self-test: all %d checks passed" % len(checks))
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    return run(sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
