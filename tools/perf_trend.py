#!/usr/bin/env python3
"""Diff two BENCH_*.json perf records and flag regressions.

Every bench binary writes a machine-readable record with --json=<path>
(see harness::BenchReport): per-config simulated throughput (opsPerMs),
host kernel speed (eventsPerSec), and an aggregate host events/sec.
This tool compares a baseline record against a current one and exits
non-zero when either metric regresses beyond the threshold:

  - opsPerMs is simulated throughput: deterministic for a given commit,
    so any drop is a real behavioral/performance change.
  - eventsPerSec is host simulation speed: the metric the fast-kernel
    work optimizes, but noisy across machines, so it gets its own
    (typically looser) threshold.

Usage:
  perf_trend.py BASELINE.json CURRENT.json [--threshold 0.10]
                [--host-threshold 0.10] [--allow-missing-baseline]

CI wires this into the bench-perf job against the BENCH_*.json artifact
of the last successful run on main; --allow-missing-baseline keeps the
very first run (or a renamed bench) green.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        rec = json.load(f)
    # Validate by schema, not by file name: a BENCH_*.json record is an
    # object with a bench name and a configs list. Records stamped with
    # "sanitizer" come from instrumented builds (-DSYNCRON_SANITIZE=...)
    # whose timings are meaningless as perf data — refuse them the same
    # way as a malformed record, so a sanitizer-job artifact can never
    # become a perf baseline.
    if not isinstance(rec, dict) or "bench" not in rec \
            or not isinstance(rec.get("configs"), list):
        raise ValueError("not a bench record (missing 'bench'/'configs')")
    if rec.get("sanitizer"):
        raise ValueError("sanitizer-instrumented record (%s); not usable "
                         "as perf data" % rec["sanitizer"])
    return rec


def fmt_delta(base, cur):
    if base <= 0:
        return "n/a"
    return "%+.1f%%" % ((cur - base) / base * 100.0)


def compare_metric(name, pairs, threshold, failures):
    """pairs: list of (label, baseline_value, current_value)."""
    printed_header = False
    for label, base, cur in pairs:
        if base <= 0:
            continue
        delta = (cur - base) / base
        marker = ""
        if delta < -threshold:
            marker = "  << REGRESSION"
            failures.append(
                "%s '%s': %.3f -> %.3f (%s, threshold -%.0f%%)"
                % (name, label, base, cur, fmt_delta(base, cur),
                   threshold * 100))
        if not printed_header:
            print("-- %s (fail below -%.0f%%)" % (name, threshold * 100))
            printed_header = True
        print("  %-40s %12.3f %12.3f  %s%s"
              % (label, base, cur, fmt_delta(base, cur), marker))


def main():
    ap = argparse.ArgumentParser(
        description="diff two BENCH_*.json records, exit non-zero on "
                    "regression")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed opsPerMs regression "
                         "(fraction, default 0.10)")
    ap.add_argument("--host-threshold", type=float, default=0.10,
                    help="max allowed host events/sec regression "
                         "(fraction, default 0.10)")
    ap.add_argument("--allow-missing-baseline", action="store_true",
                    help="exit 0 when the baseline file is absent")
    args = ap.parse_args()

    try:
        base = load(args.baseline)
    except (OSError, ValueError) as e:
        # A record can be missing from the baseline artifacts for benign
        # reasons (very first CI run, a bench added by the current
        # change, a truncated artifact download): exit 0 with a notice
        # instead of a stack trace when the caller opted in.
        if args.allow_missing_baseline:
            print("perf_trend: no usable baseline record at '%s' (%s); "
                  "skipping comparison" % (args.baseline, e))
            return 0
        print("perf_trend: baseline '%s' unreadable: %s"
              % (args.baseline, e), file=sys.stderr)
        return 2
    try:
        cur = load(args.current)
    except (OSError, ValueError) as e:
        print("perf_trend: current record '%s' unreadable: %s"
              % (args.current, e), file=sys.stderr)
        return 2

    if base.get("bench") != cur.get("bench"):
        print("perf_trend: comparing different benches ('%s' vs '%s')"
              % (base.get("bench"), cur.get("bench")), file=sys.stderr)
        return 2

    base_cfgs = {c["label"]: c for c in base.get("configs", [])}
    cur_cfgs = {c["label"]: c for c in cur.get("configs", [])}
    shared = [l for l in base_cfgs if l in cur_cfgs]
    for l in base_cfgs:
        if l not in cur_cfgs:
            print("perf_trend: label '%s' only in baseline (renamed "
                  "config?)" % l)
    for l in cur_cfgs:
        if l not in base_cfgs:
            print("perf_trend: label '%s' is new (no baseline)" % l)

    failures = []

    print("== perf trend: %s (%d shared configs)"
          % (cur.get("bench"), len(shared)))
    compare_metric(
        "ops/ms (simulated)",
        [(l, base_cfgs[l].get("opsPerMs", 0.0),
          cur_cfgs[l].get("opsPerMs", 0.0)) for l in shared],
        args.threshold, failures)
    compare_metric(
        "events/sec (host, per config)",
        [(l, base_cfgs[l].get("eventsPerSec", 0.0),
          cur_cfgs[l].get("eventsPerSec", 0.0)) for l in shared],
        args.host_threshold, failures)
    compare_metric(
        "events/sec (host, aggregate)",
        [("<total>", base.get("host", {}).get("eventsPerSec", 0.0),
          cur.get("host", {}).get("eventsPerSec", 0.0))],
        args.host_threshold, failures)

    if failures:
        print("\nperf_trend: %d regression(s):" % len(failures))
        for f in failures:
            print("  " + f)
        return 1
    print("\nperf_trend: OK (no metric regressed beyond threshold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
