/**
 * @file
 * Offline sync-correctness analysis over a captured trace file.
 *
 * Runs the same AnalysisEngine the live `--analyze` path uses (lockset
 * race checking is unavailable offline — traces carry no data-access
 * hints — but the lock-order deadlock analyzer and the misuse linter see
 * exactly what they would see live) and prints every finding with its
 * witness. Exit status: 0 when the trace analyzes clean, 1 when there
 * are findings, 2 on usage or file errors.
 */

#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/report.hh"
#include "analysis/trace_analysis.hh"
#include "trace/format.hh"

namespace {

void
usage(std::ostream &os)
{
    os << "usage: analyze_trace <trace-file> [--json=PATH]\n"
       << "\n"
       << "  Replays the sync-op trace through the correctness analyzers\n"
       << "  (lock-order deadlock detection, misuse lint) and reports\n"
       << "  every finding with a structured witness.\n"
       << "\n"
       << "  --json=PATH   also write the report as JSON ('-' = stdout)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string tracePath;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0) {
            usage(std::cout);
            return 0;
        }
        if (std::strncmp(arg, "--json=", 7) == 0) {
            jsonPath = arg + 7;
        } else if (arg[0] == '-') {
            std::cerr << "analyze_trace: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        } else if (tracePath.empty()) {
            tracePath = arg;
        } else {
            std::cerr << "analyze_trace: more than one trace file given\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (tracePath.empty()) {
        usage(std::cerr);
        return 2;
    }

    try {
        const syncron::trace::Trace trace =
            syncron::trace::readTraceFile(tracePath);
        const syncron::analysis::AnalysisReport report =
            syncron::analysis::analyzeTrace(trace);

        if (!jsonPath.empty()) {
            if (jsonPath == "-") {
                report.writeJson(std::cout);
                std::cout << '\n';
            } else {
                std::ofstream os(jsonPath, std::ios::binary);
                if (!os) {
                    std::cerr << "analyze_trace: cannot write '" << jsonPath
                              << "'\n";
                    return 2;
                }
                report.writeJson(os);
                os << '\n';
            }
        }

        if (report.clean()) {
            std::cout << tracePath << ": " << trace.records.size()
                      << " records analyzed, no findings\n";
            return 0;
        }
        report.print(std::cerr);
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "analyze_trace: " << e.what() << "\n";
        return 2;
    }
}
