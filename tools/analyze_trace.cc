/**
 * @file
 * Offline sync-correctness analysis over a captured trace file — or a
 * whole corpus directory of them.
 *
 * Runs the same AnalysisEngine the live `--analyze` path uses (lockset
 * race checking is unavailable offline — traces carry no data-access
 * hints — but the lock-order deadlock analyzer and the misuse linter see
 * exactly what they would see live) and prints every finding with its
 * witness. Given a directory, every *.trc inside (trace::Corpus
 * enumeration, mmap-read) is analyzed and a per-file summary printed.
 * Exit status: 0 when everything analyzes clean, 1 when any trace has
 * findings, 2 on usage or file errors.
 */

#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/report.hh"
#include "analysis/trace_analysis.hh"
#include "trace/corpus.hh"
#include "trace/format.hh"
#include "trace/mmap_reader.hh"

namespace {

void
usage(std::ostream &os)
{
    os << "usage: analyze_trace <trace-file|corpus-dir> [--json=PATH]\n"
       << "\n"
       << "  Replays the sync-op trace through the correctness analyzers\n"
       << "  (lock-order deadlock detection, misuse lint) and reports\n"
       << "  every finding with a structured witness. A directory\n"
       << "  analyzes every *.trc inside with a per-file summary\n"
       << "  (--json applies to single-file mode only).\n"
       << "\n"
       << "  --json=PATH   also write the report as JSON ('-' = stdout)\n";
}

/** Analyzes every trace of a corpus; returns the process exit code. */
int
analyzeCorpus(const std::string &dir)
{
    const syncron::trace::Corpus corpus =
        syncron::trace::Corpus::open(dir);
    unsigned cleanFiles = 0;
    unsigned dirtyFiles = 0;
    unsigned badFiles = 0;
    for (const syncron::trace::CorpusFile &file : corpus.files()) {
        try {
            syncron::trace::MappedTraceReader reader(file.path);
            const syncron::trace::Trace trace = reader.materialize();
            const syncron::analysis::AnalysisReport report =
                syncron::analysis::analyzeTrace(trace);
            if (report.clean()) {
                std::cout << file.name << ": "
                          << trace.records.size()
                          << " records analyzed, no findings\n";
                ++cleanFiles;
            } else {
                std::cout << file.name << ": "
                          << trace.records.size() << " records, "
                          << report.findings.size() << " finding(s)\n";
                report.print(std::cerr);
                ++dirtyFiles;
            }
        } catch (const std::exception &e) {
            std::cout << file.name << ": unreadable (" << e.what()
                      << ")\n";
            ++badFiles;
        }
    }
    std::cout << "corpus " << corpus.dir() << ": " << cleanFiles
              << " clean, " << dirtyFiles << " with findings, "
              << badFiles << " unreadable\n";
    if (badFiles > 0)
        return 2;
    return dirtyFiles > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string tracePath;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0) {
            usage(std::cout);
            return 0;
        }
        if (std::strncmp(arg, "--json=", 7) == 0) {
            jsonPath = arg + 7;
        } else if (arg[0] == '-') {
            std::cerr << "analyze_trace: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        } else if (tracePath.empty()) {
            tracePath = arg;
        } else {
            std::cerr << "analyze_trace: more than one trace file given\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (tracePath.empty()) {
        usage(std::cerr);
        return 2;
    }

    try {
        if (syncron::trace::Corpus::isDirectory(tracePath)) {
            if (!jsonPath.empty()) {
                std::cerr << "analyze_trace: --json is single-file "
                             "only\n";
                return 2;
            }
            return analyzeCorpus(tracePath);
        }

        const syncron::trace::Trace trace =
            syncron::trace::readTraceFile(tracePath);
        const syncron::analysis::AnalysisReport report =
            syncron::analysis::analyzeTrace(trace);

        if (!jsonPath.empty()) {
            if (jsonPath == "-") {
                report.writeJson(std::cout);
                std::cout << '\n';
            } else {
                std::ofstream os(jsonPath, std::ios::binary);
                if (!os) {
                    std::cerr << "analyze_trace: cannot write '" << jsonPath
                              << "'\n";
                    return 2;
                }
                report.writeJson(os);
                os << '\n';
            }
        }

        if (report.clean()) {
            std::cout << tracePath << ": " << trace.records.size()
                      << " records analyzed, no findings\n";
            return 0;
        }
        report.print(std::cerr);
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "analyze_trace: " << e.what() << "\n";
        return 2;
    }
}
