/**
 * @file
 * trace_collectd: the trace-service collector daemon.
 *
 * Listens for capture sessions (src/tracenet/) and stores every
 * received trace as a SYNCTRC file — written with the stock
 * TraceWriter, so a collected trace is byte-identical to what a local
 * --trace-out capture of the same run would have produced.
 *
 *   trace_collectd --listen=127.0.0.1:0 --out-dir=traces \
 *                  --port-file=port.txt --once
 *
 * --listen accepts port 0 (ephemeral); --port-file publishes the bound
 * port so scripts can discover it. --once serves exactly one session
 * and exits with its outcome (0 completed, 2 cancelled, 3 failed) —
 * the shape CI's loopback smoke drives. Without --once the daemon
 * serves sessions until killed.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "common/log.hh"
#include "tracenet/collector.hh"
#include "tracenet/transport.hh"

using namespace syncron;

namespace {

constexpr const char *kUsage =
    "usage: trace_collectd [options]\n"
    "  --listen=<host:port>  endpoint to listen on (default\n"
    "                        127.0.0.1:7461; port 0 = ephemeral)\n"
    "  --out-dir=<dir>       directory for received traces (default .)\n"
    "  --port-file=<path>    write the bound port there (for port 0)\n"
    "  --once                serve one session, then exit with its\n"
    "                        outcome (0 ok, 2 cancelled, 3 failed)\n"
    "  --help                this text\n";

/** Value of "--opt=value"-style @p arg, or nullptr if no match. */
const char *
optValue(const char *arg, const char *prefix)
{
    const std::size_t n = std::string(prefix).size();
    if (std::string(arg).rfind(prefix, 0) != 0)
        return nullptr;
    return arg + n;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string listen = "127.0.0.1:7461";
    std::string outDir = ".";
    std::string portFile;
    bool once = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *val = nullptr;
        if ((val = optValue(arg, "--listen="))) {
            listen = val;
        } else if ((val = optValue(arg, "--out-dir="))) {
            outDir = val;
        } else if ((val = optValue(arg, "--port-file="))) {
            portFile = val;
        } else if (std::string(arg) == "--once") {
            once = true;
        } else if (std::string(arg) == "--help") {
            std::cout << kUsage;
            return 0;
        } else {
            std::cerr << "unknown argument '" << arg << "'\n" << kUsage;
            return 1;
        }
    }

    tracenet::Listener listener = tracenet::Listener::listen(listen);
    std::cout << "trace_collectd listening on port "
              << listener.boundPort() << ", storing traces in "
              << outDir << "\n";
    if (!portFile.empty()) {
        std::ofstream pf(portFile, std::ios::trunc);
        pf << listener.boundPort() << "\n";
        if (!pf)
            SYNCRON_FATAL("cannot write port file " << portFile);
    }

    for (;;) {
        tracenet::Transport conn = listener.accept(-1);
        if (!conn.valid())
            continue;
        const tracenet::CollectResult res =
            tracenet::collectOne(conn, outDir, 10000);
        if (once) {
            switch (res.session.outcome) {
              case tracenet::SessionOutcome::Completed:
                return 0;
              case tracenet::SessionOutcome::Cancelled:
                return 2;
              case tracenet::SessionOutcome::Failed:
                return 3;
            }
            return 3;
        }
    }
}
